// Top-level integration checks: the whole pipeline from configuration to
// paper-shape assertions, exercised through the same entry points the
// benchmarks use.
package gathernoc

import (
	"testing"

	"gathernoc/internal/cnn"
	"gathernoc/internal/core"
	"gathernoc/internal/flit"
	"gathernoc/internal/topology"
)

// flitPayload builds a tagged gather payload (shared with bench_test.go).
func flitPayload(seq uint64, src, dst topology.NodeID) flit.Payload {
	return flit.Payload{Seq: seq, Src: src, Dst: dst, Bits: 32, Value: seq}
}

// TestHeadlineReproduction asserts the paper's headline claims end to end:
// gather beats repetitive unicast on latency and power, the simulated
// improvement exceeds the analytic estimate, and Conv1 dominates.
func TestHeadlineReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full-layer comparison")
	}
	layers := cnn.AlexNetConvLayers()
	var prev float64
	for i, layer := range layers {
		cmp, err := core.CompareLayer(8, 8, layer, core.Options{Rounds: 1})
		if err != nil {
			t.Fatal(err)
		}
		if cmp.LatencyImprovementPct <= 0 || cmp.PowerImprovementPct <= 0 {
			t.Errorf("%s: improvements %.2f%%/%.2f%% not positive",
				layer.Name, cmp.LatencyImprovementPct, cmp.PowerImprovementPct)
		}
		if cmp.LatencyImprovementPct < cmp.EstimatedImprovementPct {
			t.Errorf("%s: simulated %.2f%% below estimate %.2f%%",
				layer.Name, cmp.LatencyImprovementPct, cmp.EstimatedImprovementPct)
		}
		if i == 0 {
			prev = cmp.LatencyImprovementPct
		} else if cmp.LatencyImprovementPct >= prev {
			t.Errorf("%s: improvement %.2f%% >= Conv1's %.2f%% (Conv1 should dominate)",
				layer.Name, cmp.LatencyImprovementPct, prev)
		}
	}
}
