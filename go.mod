module gathernoc

go 1.22
