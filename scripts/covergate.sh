#!/usr/bin/env bash
# Per-package coverage ratchet: runs the short suite with atomic coverage
# and fails if any package drops below its floor. Floors sit one point
# under the coverage measured when the gate was introduced (PR 9, widened
# in PR 10); when a PR raises a package's coverage durably, raise its
# floor to match — the ratchet only turns one way.
#
# Coverage is computed from a single merged -coverpkg=./... profile, so a
# package is credited for every test that exercises it — including the
# root package's integration suites (golden pins, shard equivalence,
# snapshot round-trips) — not just its own unit tests. That is the number
# that answers "is this line ever executed under test?".
set -euo pipefail
cd "$(dirname "$0")/.."

# The root package (gathernoc) is doc-only — no statements to cover —
# so it has no floor; its tests still run as part of the sweep. The
# examples/ programs are exercised by CI's run-every-example step, not
# by tests, so they carry no floors either.
floors="
gathernoc/cmd/benchreport 6
gathernoc/cmd/cnntrace 85
gathernoc/cmd/experiments 56
gathernoc/cmd/gatherviz 91
gathernoc/cmd/nocsim 81
gathernoc/internal/analytic 92
gathernoc/internal/cnn 97
gathernoc/internal/collective 92
gathernoc/internal/core 88
gathernoc/internal/experiments 86
gathernoc/internal/fault 95
gathernoc/internal/flit 94
gathernoc/internal/link 96
gathernoc/internal/nic 92
gathernoc/internal/noc 87
gathernoc/internal/power 99
gathernoc/internal/reduce 87
gathernoc/internal/ring 94
gathernoc/internal/router 87
gathernoc/internal/sim 93
gathernoc/internal/stats 95
gathernoc/internal/systolic 92
gathernoc/internal/telemetry 89
gathernoc/internal/topology 94
gathernoc/internal/traffic 88
gathernoc/internal/workload 90
"

profile="$(mktemp)"
trap 'rm -f "$profile"' EXIT

go test -short -covermode=atomic -coverpkg=./... -coverprofile="$profile" ./... || {
  echo "covergate: test run failed" >&2
  exit 1
}

# Profile lines: "file.go:start.col,end.col numstmt count". The merged
# profile repeats a block once per test binary that instrumented it;
# count statements once per block, covered if any binary hit it.
summary="$(awk '
  /^mode:/ { next }
  {
    split($1, loc, ":")
    key = $1
    stmt[key] = $2
    if ($3 > 0) hit[key] = 1
    pkg = loc[1]; sub(/\/[^\/]*$/, "", pkg)
    pkgof[key] = pkg
  }
  END {
    for (k in stmt) {
      p = pkgof[k]
      total[p] += stmt[k]
      if (k in hit) covered[p] += stmt[k]
    }
    for (p in total) printf "%s %d\n", p, int(100 * covered[p] / total[p])
  }
' "$profile" | sort)"
echo "$summary"

fail=0
while read -r pkg floor; do
  [ -z "$pkg" ] && continue
  pct="$(echo "$summary" | awk -v p="$pkg" '$1 == p { print $2 }')"
  if [ -z "$pct" ]; then
    echo "covergate: no coverage data for $pkg" >&2
    fail=1
    continue
  fi
  if [ "$pct" -lt "$floor" ]; then
    echo "covergate: $pkg at ${pct}%, floor ${floor}%" >&2
    fail=1
  fi
done <<EOF
$floors
EOF

if [ "$fail" -ne 0 ]; then
  echo "covergate: FAIL — package coverage fell below its ratchet floor" >&2
  exit 1
fi
echo "covergate: all packages at or above their floors"
