#!/usr/bin/env bash
# Per-package coverage ratchet: runs the short suite with atomic coverage
# and fails if any package drops below its floor. Floors sit one point
# under the coverage measured when the gate was introduced (PR 9); when a
# PR raises a package's coverage durably, raise its floor to match — the
# ratchet only turns one way.
set -euo pipefail
cd "$(dirname "$0")/.."

# The root package (gathernoc) is doc-only — no statements to cover —
# so it has no floor; its tests still run as part of the sweep.
floors="
gathernoc/cmd/benchreport 7
gathernoc/cmd/cnntrace 85
gathernoc/cmd/experiments 54
gathernoc/cmd/gatherviz 91
gathernoc/cmd/nocsim 82
gathernoc/internal/analytic 92
gathernoc/internal/cnn 97
gathernoc/internal/collective 88
gathernoc/internal/core 85
gathernoc/internal/experiments 86
gathernoc/internal/fault 94
gathernoc/internal/flit 75
gathernoc/internal/link 36
gathernoc/internal/nic 52
gathernoc/internal/noc 38
gathernoc/internal/power 99
gathernoc/internal/reduce 99
gathernoc/internal/ring 97
gathernoc/internal/router 78
gathernoc/internal/sim 35
gathernoc/internal/stats 95
gathernoc/internal/systolic 90
gathernoc/internal/telemetry 85
gathernoc/internal/topology 89
gathernoc/internal/traffic 78
gathernoc/internal/workload 88
"

out="$(go test -short -covermode=atomic -cover ./... 2>&1)" || {
  echo "$out"
  echo "covergate: test run failed" >&2
  exit 1
}
echo "$out"

fail=0
while read -r pkg floor; do
  [ -z "$pkg" ] && continue
  line="$(echo "$out" | grep -E "^ok[[:space:]]+$pkg[[:space:]]" || true)"
  if [ -z "$line" ]; then
    echo "covergate: no coverage line for $pkg" >&2
    fail=1
    continue
  fi
  pct="$(echo "$line" | grep -oE '[0-9]+\.[0-9]+% of statements' | grep -oE '^[0-9]+')"
  if [ -z "$pct" ]; then
    echo "covergate: cannot parse coverage for $pkg: $line" >&2
    fail=1
    continue
  fi
  if [ "$pct" -lt "$floor" ]; then
    echo "covergate: $pkg at ${pct}%, floor ${floor}%" >&2
    fail=1
  fi
done <<EOF
$floors
EOF

if [ "$fail" -ne 0 ]; then
  echo "covergate: FAIL — package coverage fell below its ratchet floor" >&2
  exit 1
fi
echo "covergate: all packages at or above their floors"
