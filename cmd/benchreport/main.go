// Command benchreport measures the repository's headline performance
// benchmarks — engine stepping (naive always-tick vs activity-tracked
// sleep/wake) and the parallel Fig. 7 sweep (serial vs all cores) — and
// writes the results as machine-readable JSON, starting the repository's
// performance trajectory (BENCH_PR2.json and successors).
//
// Usage:
//
//	go run ./cmd/benchreport                     # print JSON to stdout
//	go run ./cmd/benchreport -out BENCH_PR2.json # regenerate the pinned file
//
// The same workloads back BenchmarkEngineStepping and BenchmarkSweepFig7
// in bench_test.go; this command exists so a single `go run` regenerates
// the committed numbers without parsing `go test -bench` output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"gathernoc/internal/experiments"
	"gathernoc/internal/noc"
	"gathernoc/internal/traffic"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Metrics carries benchmark-specific extras (cycles simulated,
	// skipped-evaluation percentage, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file layout of BENCH_PR2.json.
type Report struct {
	GeneratedBy string   `json:"generated_by"`
	GoVersion   string   `json:"go_version"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Benchmarks  []Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	out := fs.String("out", "", "write the JSON report to this file (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	report := Report{
		GeneratedBy: "go run ./cmd/benchreport",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	// Engine stepping: the BenchmarkEngineStepping grid.
	for _, tc := range []struct {
		name   string
		always bool
		rate   float64
	}{
		{"EngineStepping/naive/low", true, 0.005},
		{"EngineStepping/activity/low", false, 0.005},
		{"EngineStepping/naive/high", true, 0.30},
		{"EngineStepping/activity/high", false, 0.30},
	} {
		var cycles int64
		var evaluated, skipped uint64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := noc.DefaultConfig(8, 8)
				cfg.EastSinks = false
				cfg.AlwaysTick = tc.always
				nw, err := noc.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
					Pattern:       traffic.UniformRandom{Nodes: 64},
					InjectionRate: tc.rate,
					PacketFlits:   2,
					Warmup:        100,
					Measure:       4900,
					Seed:          1,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := gen.Run(1_000_000)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
				evaluated = nw.Engine().Evaluated()
				skipped = nw.Engine().Skipped()
			}
		})
		metrics := map[string]float64{"cycles": float64(cycles)}
		if total := evaluated + skipped; total > 0 {
			metrics["skipped_pct"] = float64(skipped) / float64(total) * 100
		}
		report.Benchmarks = append(report.Benchmarks, toResult(tc.name, r, metrics))
	}

	// Fig. 7 sweep: serial vs all-cores, as in BenchmarkSweepFig7.
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"SweepFig7/serial", 1},
		{"SweepFig7/parallel", 0},
	} {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig7(experiments.Options{Rounds: 1, Workers: tc.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
		report.Benchmarks = append(report.Benchmarks, toResult(tc.name, r, nil))
	}

	// INA comparison: the accumulation-phase sweep added with the INA
	// subsystem, pinning its cost alongside the headline benchmarks.
	{
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.INAComparison(experiments.Options{Rounds: 1, Meshes: []int{8}}); err != nil {
					b.Fatal(err)
				}
			}
		})
		report.Benchmarks = append(report.Benchmarks, toResult("INAComparison/8x8", r, nil))
	}

	var sink io.Writer = w
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = f
	}
	enc := json.NewEncoder(sink)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(w, "wrote %s (%d benchmarks)\n", *out, len(report.Benchmarks))
	}
	return nil
}

func toResult(name string, r testing.BenchmarkResult, metrics map[string]float64) Result {
	return Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Metrics:     metrics,
	}
}
