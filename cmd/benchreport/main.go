// Command benchreport measures the repository's headline performance
// benchmarks — engine stepping (naive always-tick vs activity-tracked
// sleep/wake) and the parallel Fig. 7 sweep (serial vs all cores) — and
// writes the results as machine-readable JSON, continuing the repository's
// performance trajectory (BENCH_PR2.json, BENCH_PR3.json, ...).
//
// Usage:
//
//	go run ./cmd/benchreport                     # print JSON to stdout
//	go run ./cmd/benchreport -out BENCH_PR3.json # regenerate the pinned file
//	go run ./cmd/benchreport -baseline BENCH_PR2.json -out BENCH_PR3.json
//
// Each benchmark entry records the GOMAXPROCS it actually ran at, and the
// harness pins it per family rather than inheriting the environment:
// single-simulation benchmarks (EngineStepping, the pipeline and batch
// runs) are pinned to GOMAXPROCS(1) so scheduler noise and background
// goroutines cannot perturb a measurement that is semantically serial,
// while the scaling families (SweepFig7/parallel, EngineScaling) are
// forced to all cores even when the process was started with
// GOMAXPROCS=1, so they measure the worker pool rather than the
// environment (the PR2 snapshot was taken at GOMAXPROCS=1, where
// "parallel" silently degenerated to serial). EngineScaling entries also
// record num_cpu: on a single-core host the sharded engine still
// verifies, but cycles/sec speedup is bounded by the hardware and the
// recorded numbers must be read against that bound.
//
// With -baseline pointing at a previous snapshot, every matching
// benchmark gains a vs_baseline block with the ns/op, allocs/op and
// bytes/op deltas in percent (negative = improvement).
//
// The same workloads back BenchmarkEngineStepping and BenchmarkSweepFig7
// in bench_test.go; this command exists so a single `go run` regenerates
// the committed numbers without parsing `go test -bench` output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"gathernoc/internal/cnn"
	"gathernoc/internal/collective"
	"gathernoc/internal/experiments"
	"gathernoc/internal/fault"
	"gathernoc/internal/noc"
	"gathernoc/internal/telemetry"
	"gathernoc/internal/traffic"
	"gathernoc/internal/workload"
)

// Delta compares one measurement against the same benchmark in the
// baseline snapshot, in percent of the baseline (negative = improvement).
type Delta struct {
	NsPct     float64 `json:"ns_pct"`
	AllocsPct float64 `json:"allocs_pct"`
	BytesPct  float64 `json:"bytes_pct"`
}

// Result is one benchmark measurement.
type Result struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// GOMAXPROCS records the parallelism this benchmark ran at (the
	// report-level field records the process default).
	GOMAXPROCS int `json:"gomaxprocs"`
	// Metrics carries benchmark-specific extras (cycles simulated,
	// skipped-evaluation percentage, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// VsBaseline holds the deltas against the -baseline snapshot.
	VsBaseline *Delta `json:"vs_baseline,omitempty"`
}

// Report is the file layout of BENCH_PR2.json and successors.
type Report struct {
	GeneratedBy string   `json:"generated_by"`
	GoVersion   string   `json:"go_version"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Baseline    string   `json:"baseline,omitempty"`
	Benchmarks  []Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	out := fs.String("out", "", "write the JSON report to this file (default: stdout)")
	baseline := fs.String("baseline", "", "previous snapshot to diff against (e.g. BENCH_PR2.json); missing file is not an error")
	cacheDir := fs.String("cachedir", "", "back the SweepFig7/cached benchmark with this on-disk cache directory (default: in-memory)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	report := Report{
		GeneratedBy: "go run ./cmd/benchreport",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	// Engine stepping: the BenchmarkEngineStepping grid. Single-network
	// sequential runs, pinned to GOMAXPROCS(1) for a noise-free serial
	// measurement.
	prevProcs := runtime.GOMAXPROCS(1)
	for _, tc := range []struct {
		name   string
		always bool
		rate   float64
	}{
		{"EngineStepping/naive/low", true, 0.005},
		{"EngineStepping/activity/low", false, 0.005},
		{"EngineStepping/naive/high", true, 0.30},
		{"EngineStepping/activity/high", false, 0.30},
	} {
		var cycles int64
		var evaluated, skipped uint64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := noc.DefaultConfig(8, 8)
				cfg.EastSinks = false
				cfg.AlwaysTick = tc.always
				nw, err := noc.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
					Pattern:       traffic.UniformRandom{Nodes: 64},
					InjectionRate: tc.rate,
					PacketFlits:   2,
					Warmup:        100,
					Measure:       4900,
					Seed:          1,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := gen.Run(1_000_000)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
				evaluated = nw.Engine().Evaluated()
				skipped = nw.Engine().Skipped()
			}
		})
		metrics := map[string]float64{"cycles": float64(cycles)}
		if total := evaluated + skipped; total > 0 {
			metrics["skipped_pct"] = float64(skipped) / float64(total) * 100
		}
		report.Benchmarks = append(report.Benchmarks, toResult(tc.name, r, metrics))
	}
	runtime.GOMAXPROCS(prevProcs)

	// Engine scaling: one large saturated simulation sharded across
	// cores (BenchmarkEngineScaling, DESIGN.md §9), at full machine
	// parallelism. cycles/sec is the headline metric; speedup_vs_1shard
	// is measured against the shards=1 cell of the same mesh, and
	// num_cpu records the hardware bound the speedup must be read
	// against (1 core ⇒ parity is the ceiling).
	{
		prev := runtime.GOMAXPROCS(runtime.NumCPU())
		shardGrid := []int{1, 2, 4}
		if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
			shardGrid = append(shardGrid, n)
		}
		for _, mesh := range []int{32, 64} {
			var baseRate float64
			for _, shards := range shardGrid {
				var cycles int64
				r := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						cfg := noc.DefaultConfig(mesh, mesh)
						cfg.EastSinks = false
						cfg.Shards = shards
						nw, err := noc.New(cfg)
						if err != nil {
							b.Fatal(err)
						}
						gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
							Pattern:       traffic.UniformRandom{Nodes: mesh * mesh},
							InjectionRate: 0.02,
							PacketFlits:   2,
							Warmup:        100,
							Measure:       900,
							Seed:          1,
						})
						if err != nil {
							b.Fatal(err)
						}
						res, err := gen.Run(1_000_000)
						if err != nil {
							b.Fatal(err)
						}
						cycles = res.Cycles
						nw.Close()
					}
				})
				rate := float64(cycles) / (float64(r.NsPerOp()) / 1e9)
				if shards == 1 {
					baseRate = rate
				}
				metrics := map[string]float64{
					"cycles":         float64(cycles),
					"cycles_per_sec": rate,
					"num_cpu":        float64(runtime.NumCPU()),
				}
				if baseRate > 0 {
					metrics["speedup_vs_1shard"] = rate / baseRate
				}
				report.Benchmarks = append(report.Benchmarks,
					toResult(fmt.Sprintf("EngineScaling/%dx%d/shards=%d", mesh, mesh, shards), r, metrics))
			}
		}
		runtime.GOMAXPROCS(prev)
	}

	// Fig. 7 sweep: serial vs all-cores, as in BenchmarkSweepFig7. The
	// parallel case forces GOMAXPROCS to the machine's core count so the
	// worker pool can actually run concurrently.
	for _, tc := range []struct {
		name    string
		workers int
		procs   int
	}{
		{"SweepFig7/serial", 1, runtime.GOMAXPROCS(0)},
		{"SweepFig7/parallel", 0, runtime.NumCPU()},
	} {
		prev := runtime.GOMAXPROCS(tc.procs)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig7(experiments.Options{Rounds: 1, Workers: tc.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
		runtime.GOMAXPROCS(prev)
		res := toResult(tc.name, r, nil)
		res.GOMAXPROCS = tc.procs
		report.Benchmarks = append(report.Benchmarks, res)
	}

	// Cached sweep: the same Fig. 7 sweep served from a warm result cache
	// (BenchmarkSweepCached) — the memoization headline. One cold pass
	// fills the cache, then every measured pass replays from it; hits and
	// the speedup against the parallel uncached leg are the metrics.
	{
		cache, err := experiments.NewCache(*cacheDir)
		if err != nil {
			return err
		}
		warmOpts := experiments.Options{Rounds: 1, Cache: cache}
		if _, err := experiments.Fig7(warmOpts); err != nil {
			return err
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig7(warmOpts); err != nil {
					b.Fatal(err)
				}
			}
		})
		s := cache.Stats()
		var uncachedNs int64
		for _, br := range report.Benchmarks {
			if br.Name == "SweepFig7/parallel" {
				uncachedNs = br.NsPerOp
			}
		}
		metrics := map[string]float64{
			"cache_hits":   float64(s.Hits),
			"cache_misses": float64(s.Misses),
		}
		if r.NsPerOp() > 0 && uncachedNs > 0 {
			metrics["speedup_vs_uncached"] = float64(uncachedNs) / float64(r.NsPerOp())
		}
		report.Benchmarks = append(report.Benchmarks, toResult("SweepFig7/cached", r, metrics))
	}

	// The remaining families are single sequential simulations; pin them
	// to GOMAXPROCS(1) like EngineStepping.
	prevProcs = runtime.GOMAXPROCS(1)

	// INA comparison: the accumulation-phase sweep added with the INA
	// subsystem, pinning its cost alongside the headline benchmarks.
	{
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.INAComparison(experiments.Options{Rounds: 1, Meshes: []int{8}}); err != nil {
					b.Fatal(err)
				}
			}
		})
		report.Benchmarks = append(report.Benchmarks, toResult("INAComparison/8x8", r, nil))
	}

	// Whole-model pipeline: the workload-scheduler composition of all
	// AlexNet layers on one fabric (BenchmarkPipelineAlexNet), barrier vs
	// double-buffered overlap, with the simulated makespan as the
	// workload-level metric.
	for _, tc := range []struct {
		name    string
		overlap bool
	}{
		{"PipelineAlexNet/barrier", false},
		{"PipelineAlexNet/overlap", true},
	} {
		var makespan int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				nw, err := noc.New(noc.DefaultConfig(8, 8))
				if err != nil {
					b.Fatal(err)
				}
				job, _, err := workload.NewPipelineJob(nw, "alexnet", workload.PipelineConfig{
					Layers:  cnn.AlexNetAllLayers(),
					Scheme:  traffic.CollectGather,
					Rounds:  1,
					Overlap: tc.overlap,
				})
				if err != nil {
					b.Fatal(err)
				}
				s, err := workload.New(nw, []workload.Job{job})
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run(10_000_000)
				if err != nil {
					b.Fatal(err)
				}
				makespan = res.Jobs[0].Time()
			}
		})
		report.Benchmarks = append(report.Benchmarks, toResult(tc.name,
			r, map[string]float64{"makespan_cycles": float64(makespan)}))
	}

	// Multi-job batch: four inferences plus background traffic sharing
	// the fabric (BenchmarkMultiJob), with the batch makespan and the
	// max/min job slowdown as metrics.
	{
		var cycles int64
		var slowdown float64
		oracleErrs := 0
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := experiments.MultiJob(experiments.Options{Rounds: 1, Jobs: 4})
				if err != nil {
					b.Fatal(err)
				}
				cycles = rep.Cycles
				slowdown = rep.MaxMinSlowdown
				oracleErrs += rep.OracleErrors
			}
		})
		if oracleErrs != 0 {
			// A snapshot must never embed numbers from a run whose row
			// reductions failed verification.
			return fmt.Errorf("multijob benchmark: %d reduction oracle errors", oracleErrs)
		}
		report.Benchmarks = append(report.Benchmarks, toResult("MultiJob/4+background", r,
			map[string]float64{"batch_cycles": float64(cycles), "maxmin_slowdown": slowdown}))
	}
	// Telemetry overhead: the identical 8x8 uniform-traffic run dark and
	// with the CLI's default observability configuration (DESIGN.md §11).
	// The "on" entry records overhead_pct against the "off" entry of the
	// same snapshot; the acceptance bar is < 10%. The 10K-cycle window
	// (~40 epochs) matches bench_test.go's runTelemetryOverheadPoint so
	// the one-time ring preallocation amortizes as in real observation
	// windows and the pair prices the recording path.
	{
		var offNs int64
		for _, tc := range []struct {
			name string
			tcfg *telemetry.Config
		}{
			{"TelemetryOverhead/off", nil},
			{"TelemetryOverhead/on", func() *telemetry.Config { c := telemetry.DefaultConfig(); return &c }()},
		} {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					cfg := noc.DefaultConfig(8, 8)
					cfg.EastSinks = false
					cfg.Telemetry = tc.tcfg
					nw, err := noc.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
						Pattern:       traffic.UniformRandom{Nodes: 64},
						InjectionRate: 0.05,
						PacketFlits:   2,
						Warmup:        100,
						Measure:       9900,
						Seed:          1,
					})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := gen.Run(1_000_000); err != nil {
						b.Fatal(err)
					}
					nw.Close()
				}
			})
			var metrics map[string]float64
			if tc.tcfg == nil {
				offNs = r.NsPerOp()
			} else if offNs > 0 {
				metrics = map[string]float64{
					"overhead_pct": (float64(r.NsPerOp()) - float64(offNs)) / float64(offNs) * 100,
				}
			}
			report.Benchmarks = append(report.Benchmarks, toResult(tc.name, r, metrics))
		}
	}
	// Fault-injection overhead: the identical run fault-free and with a 1%
	// transient drop schedule plus the full recovery stack (DESIGN.md §12).
	// The "off" leg is the configuration every published number uses — its
	// nil-check cost against the previous snapshot is the < 2% acceptance
	// bar — and the "on" entry records overhead_pct against it, pricing
	// per-link fault decisions, credit flushers, fault-aware ejectors and
	// the reliability hub together.
	{
		var offNs int64
		for _, tc := range []struct {
			name string
			fcfg *fault.Config
		}{
			{"FaultOverhead/off", nil},
			{"FaultOverhead/on", &fault.Config{Seed: 1, DropRate: 0.01, CorruptRate: 0.0025}},
		} {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					cfg := noc.DefaultConfig(8, 8)
					cfg.EastSinks = false
					cfg.Faults = tc.fcfg
					nw, err := noc.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
						Pattern:       traffic.UniformRandom{Nodes: 64},
						InjectionRate: 0.05,
						PacketFlits:   2,
						Warmup:        100,
						Measure:       9900,
						Seed:          1,
					})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := gen.Run(1_000_000); err != nil {
						b.Fatal(err)
					}
					nw.Close()
				}
			})
			var metrics map[string]float64
			if tc.fcfg == nil {
				offNs = r.NsPerOp()
			} else if offNs > 0 {
				metrics = map[string]float64{
					"overhead_pct": (float64(r.NsPerOp()) - float64(offNs)) / float64(offNs) * 100,
				}
			}
			report.Benchmarks = append(report.Benchmarks, toResult(tc.name, r, metrics))
		}
	}
	runtime.GOMAXPROCS(prevProcs)

	// Mesh-wide collectives: one 8x8 all-reduce per iteration under each
	// transport (BenchmarkCollectives), pinned serial like the other
	// single-simulation families. round_cycles and root_flits are the
	// headline metrics: the tree exists to amortize the root's ejection
	// serialization, and the fused variant to shrink it further.
	prevProcs = runtime.GOMAXPROCS(1)
	for _, alg := range []collective.Algorithm{collective.AlgTree, collective.AlgFlat, collective.AlgFused} {
		alg := alg
		var round float64
		var rootFlits uint64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := noc.DefaultConfig(8, 8)
				if alg == collective.AlgFused {
					cfg.EnableINA = true
				}
				nw, err := noc.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				ctl, err := collective.NewController(nw, collective.Config{
					Op: collective.AllReduce, Algorithm: alg, Rounds: 2, ComputeLatency: 10,
				})
				if err != nil {
					nw.Close()
					b.Fatal(err)
				}
				res, err := ctl.Run(50_000_000)
				nw.Close()
				if err != nil {
					b.Fatal(err)
				}
				if res.OracleErrors != 0 || res.BroadcastErrors != 0 {
					b.Fatalf("%d oracle / %d broadcast errors", res.OracleErrors, res.BroadcastErrors)
				}
				round = res.RoundCycles.Mean()
				rootFlits = res.RootFlits
			}
		})
		report.Benchmarks = append(report.Benchmarks, toResult("Collectives/"+alg.String(), r, map[string]float64{
			"round_cycles": round,
			"root_flits":   float64(rootFlits),
		}))
	}
	runtime.GOMAXPROCS(prevProcs)

	if *baseline != "" {
		if err := applyBaseline(&report, *baseline); err != nil {
			return err
		}
	}

	var sink io.Writer = w
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = f
	}
	enc := json.NewEncoder(sink)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(w, "wrote %s (%d benchmarks)\n", *out, len(report.Benchmarks))
	}
	return nil
}

// applyBaseline annotates every benchmark that also appears in the
// baseline snapshot with its percentage deltas. A missing baseline file is
// tolerated (first snapshot in a fresh clone); a malformed one is not.
func applyBaseline(report *Report, path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	byName := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		byName[r.Name] = r
	}
	report.Baseline = path
	for i := range report.Benchmarks {
		cur := &report.Benchmarks[i]
		old, ok := byName[cur.Name]
		if !ok {
			continue
		}
		cur.VsBaseline = &Delta{
			NsPct:     pctDelta(cur.NsPerOp, old.NsPerOp),
			AllocsPct: pctDelta(cur.AllocsPerOp, old.AllocsPerOp),
			BytesPct:  pctDelta(cur.BytesPerOp, old.BytesPerOp),
		}
	}
	return nil
}

// pctDelta returns the percent change from old to cur. A zero baseline
// with a nonzero current value is compared against 1 instead of reading
// as "unchanged" — once a metric is driven to zero (the zero-alloc
// goal), a regression away from it must still fire a large positive
// delta, and JSON cannot carry +Inf.
func pctDelta(cur, old int64) float64 {
	if old == 0 {
		if cur == 0 {
			return 0
		}
		old = 1
	}
	return (float64(cur) - float64(old)) / float64(old) * 100
}

func toResult(name string, r testing.BenchmarkResult, metrics map[string]float64) Result {
	return Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Metrics:     metrics,
	}
}
