package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReportShape exercises the full command against a temp file. The
// benchmarks themselves run under testing.Benchmark's auto-scaling, so
// this is the slowest test in the repository's cmd tree (~seconds); it
// validates the JSON contract the committed BENCH_PR2.json follows.
func TestReportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("benchreport runs real benchmarks; skipped in -short")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	var b strings.Builder
	if err := run([]string{"-out", path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "wrote") {
		t.Errorf("missing confirmation: %q", b.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.GoVersion == "" || rep.GeneratedBy == "" {
		t.Errorf("missing provenance: %+v", rep)
	}
	want := map[string]bool{
		"EngineStepping/naive/low":     false,
		"EngineStepping/activity/low":  false,
		"EngineStepping/naive/high":    false,
		"EngineStepping/activity/high": false,
		"SweepFig7/serial":             false,
		"SweepFig7/parallel":           false,
		"INAComparison/8x8":            false,
	}
	for _, r := range rep.Benchmarks {
		if _, ok := want[r.Name]; ok {
			want[r.Name] = true
		}
		if r.NsPerOp <= 0 || r.Iterations <= 0 {
			t.Errorf("%s: implausible measurement %+v", r.Name, r)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("benchmark %s missing from report", name)
		}
	}
	// The activity-tracked engine must actually skip evaluations at the
	// low rate — the trajectory's headline number.
	for _, r := range rep.Benchmarks {
		if r.Name == "EngineStepping/activity/low" {
			if r.Metrics["skipped_pct"] < 50 {
				t.Errorf("skipped_pct = %.1f, expected the sleep/wake win", r.Metrics["skipped_pct"])
			}
		}
	}
	// Every entry records its own parallelism, and the parallel sweep
	// must not have silently run serial (the PR2 snapshot's mistake).
	for _, r := range rep.Benchmarks {
		if r.GOMAXPROCS < 1 {
			t.Errorf("%s: gomaxprocs missing", r.Name)
		}
	}
}

// TestApplyBaseline exercises the delta annotation against a synthetic
// baseline snapshot, including a benchmark absent from the baseline and a
// missing file.
func TestApplyBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	base := Report{Benchmarks: []Result{
		{Name: "X", NsPerOp: 200, AllocsPerOp: 1000, BytesPerOp: 4000},
	}}
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep := Report{Benchmarks: []Result{
		{Name: "X", NsPerOp: 100, AllocsPerOp: 100, BytesPerOp: 8000},
		{Name: "Y", NsPerOp: 50},
	}}
	if err := applyBaseline(&rep, path); err != nil {
		t.Fatal(err)
	}
	if rep.Baseline != path {
		t.Errorf("Baseline = %q, want %q", rep.Baseline, path)
	}
	d := rep.Benchmarks[0].VsBaseline
	if d == nil {
		t.Fatal("X: missing vs_baseline")
	}
	if d.NsPct != -50 || d.AllocsPct != -90 || d.BytesPct != 100 {
		t.Errorf("deltas = %+v, want ns -50%%, allocs -90%%, bytes +100%%", d)
	}
	if rep.Benchmarks[1].VsBaseline != nil {
		t.Error("Y: unexpected delta for benchmark absent from baseline")
	}

	// A missing baseline is tolerated silently (fresh clone).
	rep2 := Report{}
	if err := applyBaseline(&rep2, filepath.Join(dir, "nope.json")); err != nil {
		t.Fatal(err)
	}
	if rep2.Baseline != "" {
		t.Error("missing baseline still recorded")
	}
}
