package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReportShape exercises the full command against a temp file. The
// benchmarks themselves run under testing.Benchmark's auto-scaling, so
// this is the slowest test in the repository's cmd tree (~seconds); it
// validates the JSON contract the committed BENCH_PR2.json follows.
func TestReportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("benchreport runs real benchmarks; skipped in -short")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	var b strings.Builder
	if err := run([]string{"-out", path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "wrote") {
		t.Errorf("missing confirmation: %q", b.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.GoVersion == "" || rep.GeneratedBy == "" {
		t.Errorf("missing provenance: %+v", rep)
	}
	want := map[string]bool{
		"EngineStepping/naive/low":     false,
		"EngineStepping/activity/low":  false,
		"EngineStepping/naive/high":    false,
		"EngineStepping/activity/high": false,
		"SweepFig7/serial":             false,
		"SweepFig7/parallel":           false,
		"INAComparison/8x8":            false,
	}
	for _, r := range rep.Benchmarks {
		if _, ok := want[r.Name]; ok {
			want[r.Name] = true
		}
		if r.NsPerOp <= 0 || r.Iterations <= 0 {
			t.Errorf("%s: implausible measurement %+v", r.Name, r)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("benchmark %s missing from report", name)
		}
	}
	// The activity-tracked engine must actually skip evaluations at the
	// low rate — the trajectory's headline number.
	for _, r := range rep.Benchmarks {
		if r.Name == "EngineStepping/activity/low" {
			if r.Metrics["skipped_pct"] < 50 {
				t.Errorf("skipped_pct = %.1f, expected the sleep/wake win", r.Metrics["skipped_pct"])
			}
		}
	}
}
