// Command experiments regenerates the paper's tables and figures (and the
// repository's ablations and extensions) on the simulator.
//
// Usage:
//
//	experiments -exp all                 # everything
//	experiments -exp table2              # one artifact
//	experiments -exp fig7 -rounds 4      # more simulated rounds per run
//	experiments -exp fig7 -format json   # machine-readable rows
//
// Artifacts:  table1 table2 table3 fig1 fig7 fig8 fig9 fig10
// Ablations:  delta eta gathervc vcs depth sinkcost skew routing
// Extensions: ina collectives topology dataflow mixed streaming fullmodel
// fullvgg
// Reliability: faults (collection-scheme degradation under transient loss)
// Workloads:  pipeline (whole-model barrier/overlap vs analytic; -model)
// and multijob (batched inferences + background traffic; -jobs/-overlap)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"gathernoc/internal/experiments"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// artifact pairs a machine-readable result with its rendered text form.
type artifact struct {
	name string
	run  func() (data any, text string, err error)
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	exp := fs.String("exp", "all", "artifact to regenerate (all, table1, table2, table3, fig1, fig7, fig8, fig9, fig10, delta, eta, gathervc, vcs, depth, sinkcost, skew, routing, ina, collectives, topology, dataflow, mixed, streaming, fullmodel, fullvgg, faults, pipeline, multijob)")
	rounds := fs.Int("rounds", 2, "systolic rounds to simulate per run")
	format := fs.String("format", "text", "output format (text, json)")
	workers := fs.Int("workers", 0, "parallel simulation workers per sweep (0 = GOMAXPROCS, 1 = serial)")
	model := fs.String("model", "alexnet", "CNN model for the pipeline comparison (alexnet, vgg16)")
	jobs := fs.Int("jobs", 4, "batched inference jobs in the multi-job run")
	overlap := fs.Bool("overlap", false, "double-buffered phase overlap for the multi-job inference pipelines")
	cacheDir := fs.String("cachedir", "", "memoize sweep cells content-addressed under this directory (reruns with identical inputs replay from cache)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown format %q (text, json)", *format)
	}
	opts := experiments.Options{
		Rounds: *rounds, Workers: *workers, Ctx: ctx,
		Model: *model, Jobs: *jobs, Overlap: *overlap,
	}
	if *cacheDir != "" {
		cache, err := experiments.NewCache(*cacheDir)
		if err != nil {
			return err
		}
		opts.Cache = cache
		// The hit accounting goes to stderr so the report on stdout stays
		// byte-identical between a cold run and its fully cached rerun —
		// the property CI pins.
		defer func() {
			s := cache.Stats()
			fmt.Fprintf(os.Stderr, "cache          dir=%s hits=%d misses=%d stale=%d read=%dB written=%dB\n",
				cache.Dir(), s.Hits, s.Misses, s.Stale, s.BytesRead, s.BytesWritten)
		}()
	}

	artifacts := []artifact{
		{"table1", func() (any, string, error) {
			text := experiments.RenderTable1(8, 8) + "\n" + experiments.RenderTable1(16, 16)
			return map[string]string{"table1": text}, text, nil
		}},
		{"table2", func() (any, string, error) {
			rows, err := experiments.Table2(opts)
			if err != nil {
				return nil, "", err
			}
			return rows, experiments.RenderTable2(rows), nil
		}},
		{"table3", func() (any, string, error) {
			text := experiments.RenderTable3()
			return map[string]string{"table3": text}, text, nil
		}},
		{"fig1", func() (any, string, error) {
			r := experiments.Fig1()
			return r, experiments.RenderFig1(r), nil
		}},
		figure("fig7", "Fig. 7: total-latency improvement, AlexNet", experiments.Fig7, opts),
		figure("fig8", "Fig. 8: total-latency improvement, VGG-16", experiments.Fig8, opts),
		figure("fig9", "Fig. 9: NoC power improvement, AlexNet", experiments.Fig9, opts),
		figure("fig10", "Fig. 10: NoC power improvement, VGG-16", experiments.Fig10, opts),
		ablation("delta", "Ablation: flat delta sweep (AlexNet Conv3, 8x8)", experiments.AblationDelta, opts),
		ablation("eta", "Ablation: gather capacity sweep", experiments.AblationEta, opts),
		ablation("gathervc", "Ablation: dedicated gather VC (0=shared, 1=dedicated)", experiments.AblationGatherVC, opts),
		ablation("vcs", "Ablation: virtual channel count", experiments.AblationVCs, opts),
		ablation("depth", "Ablation: buffer depth", experiments.AblationBufferDepth, opts),
		ablation("sinkcost", "Ablation: buffer transaction cost per packet", experiments.AblationSinkCost, opts),
		ablation("skew", "Ablation: completion stagger per hop", experiments.AblationSkew, opts),
		ablation("routing", "Ablation: routing algorithm (0=XY, 1=west-first)", experiments.AblationRouting, opts),
		{"ina", func() (any, string, error) {
			rows, err := experiments.INAComparison(opts)
			if err != nil {
				return nil, "", err
			}
			return rows, experiments.RenderINA(rows), nil
		}},
		{"collectives", func() (any, string, error) {
			rows, err := experiments.CollectiveComparison(opts)
			if err != nil {
				return nil, "", err
			}
			return rows, experiments.RenderCollectives(rows), nil
		}},
		{"topology", func() (any, string, error) {
			rows, err := experiments.TopologyComparison(opts)
			if err != nil {
				return nil, "", err
			}
			return rows, experiments.RenderTopologyComparison(rows), nil
		}},
		{"dataflow", func() (any, string, error) {
			rows, err := experiments.Dataflows(opts)
			if err != nil {
				return nil, "", err
			}
			return rows, experiments.RenderDataflows(rows), nil
		}},
		{"mixed", func() (any, string, error) {
			rows, err := experiments.MixedTraffic(opts)
			if err != nil {
				return nil, "", err
			}
			return rows, experiments.RenderMixedTraffic(rows), nil
		}},
		{"faults", func() (any, string, error) {
			rows, err := experiments.FaultSweep(opts)
			if err != nil {
				return nil, "", err
			}
			return rows, experiments.RenderFaultSweep(rows), nil
		}},
		{"streaming", func() (any, string, error) {
			r, err := experiments.StreamingOverNoC(64)
			if err != nil {
				return nil, "", err
			}
			return r, experiments.RenderStreaming(r), nil
		}},
		{"fullmodel", func() (any, string, error) {
			r, err := experiments.FullAlexNet(8, opts)
			if err != nil {
				return nil, "", err
			}
			return r, experiments.RenderModel(r), nil
		}},
		{"fullvgg", func() (any, string, error) {
			r, err := experiments.FullVGG16(8, opts)
			if err != nil {
				return nil, "", err
			}
			return r, experiments.RenderModel(r), nil
		}},
		{"pipeline", func() (any, string, error) {
			rows, err := experiments.PipelineComparison(opts)
			if err != nil {
				return nil, "", err
			}
			return rows, experiments.RenderPipeline(rows), nil
		}},
		{"multijob", func() (any, string, error) {
			r, err := experiments.MultiJob(opts)
			if err != nil {
				return nil, "", err
			}
			return r, experiments.RenderMultiJob(r), nil
		}},
	}

	ran := 0
	jsonOut := map[string]any{}
	for _, a := range artifacts {
		if *exp != "all" && *exp != a.name {
			continue
		}
		data, text, err := a.run()
		if err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		if *format == "json" {
			jsonOut[a.name] = data
		} else {
			fmt.Fprintf(w, "== %s ==\n%s\n", a.name, text)
		}
		ran++
	}
	if ran == 0 {
		names := make([]string, 0, len(artifacts))
		for _, a := range artifacts {
			names = append(names, a.name)
		}
		return fmt.Errorf("unknown experiment %q (have: all, %s)", *exp, strings.Join(names, ", "))
	}
	if *format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(jsonOut)
	}
	return nil
}

func figure(name, title string, fn func(experiments.Options) ([]experiments.ImprovementRow, error), opts experiments.Options) artifact {
	return artifact{name: name, run: func() (any, string, error) {
		rows, err := fn(opts)
		if err != nil {
			return nil, "", err
		}
		return rows, experiments.RenderImprovements(title, "% improvement, gather vs repetitive unicast", rows), nil
	}}
}

func ablation(name, title string, fn func(experiments.Options) ([]experiments.AblationRow, error), opts experiments.Options) artifact {
	return artifact{name: name, run: func() (any, string, error) {
		rows, err := fn(opts)
		if err != nil {
			return nil, "", err
		}
		return rows, experiments.RenderAblation(title, rows), nil
	}}
}
