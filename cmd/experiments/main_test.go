package main

import (
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleArtifact(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "fig1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "== fig1 ==") || !strings.Contains(out, "15 hops") {
		t.Errorf("output missing fig1 content:\n%s", out)
	}
}

func TestRunStaticTables(t *testing.T) {
	for _, exp := range []string{"table1", "table3"} {
		var b strings.Builder
		if err := run(context.Background(), []string{"-exp", exp}, &b); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(b.String(), "== "+exp+" ==") {
			t.Errorf("%s header missing", exp)
		}
	}
}

func TestRunSimulatedArtifact(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "table2", "-rounds", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Estimated") || !strings.Contains(out, "Simulated") {
		t.Errorf("table2 output incomplete:\n%s", out)
	}
}

func TestRunParallelWorkersMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep; internal/experiments covers sweep determinism")
	}
	var serial, parallel strings.Builder
	if err := run(context.Background(), []string{"-exp", "table2", "-rounds", "1", "-workers", "1"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-exp", "table2", "-rounds", "1", "-workers", "4"}, &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("worker count changed output:\nserial:\n%s\nparallel:\n%s", serial.String(), parallel.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	err := run(context.Background(), []string{"-exp", "nope"}, &b)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v, want unknown-experiment error", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-bogus"}, &b); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunJSONFormat(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "fig1", "-format", "json"}, &b); err != nil {
		t.Fatal(err)
	}
	var out map[string]struct {
		UnicastHops int
		GatherHops  int
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if out["fig1"].UnicastHops != 15 || out["fig1"].GatherHops != 5 {
		t.Errorf("fig1 = %+v", out["fig1"])
	}
}

func TestRunRejectsBadFormat(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-format", "xml"}, &b); err == nil {
		t.Error("bad format accepted")
	}
}

func TestRunPipelineArtifacts(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "pipeline", "-rounds", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{"== pipeline ==", "barrier", "overlap", "analytic", "exact"} {
		if !strings.Contains(out, frag) {
			t.Errorf("pipeline output missing %q:\n%s", frag, out)
		}
	}

	b.Reset()
	if err := run(context.Background(), []string{"-exp", "multijob", "-rounds", "1", "-jobs", "2", "-overlap"}, &b); err != nil {
		t.Fatal(err)
	}
	out = b.String()
	for _, frag := range []string{"== multijob ==", "inference-1", "background", "max/min slowdown", "oracle exact"} {
		if !strings.Contains(out, frag) {
			t.Errorf("multijob output missing %q:\n%s", frag, out)
		}
	}
}

func TestRunCollectivesArtifact(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "collectives", "-rounds", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{"== collectives ==", "tree", "flat", "fused", "rowgather"} {
		if !strings.Contains(out, frag) {
			t.Errorf("collectives output missing %q:\n%s", frag, out)
		}
	}
}

func TestRunFaultsArtifact(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "faults", "-rounds", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "oracle-exact") || !strings.Contains(out, "retransmits") {
		t.Errorf("faults output incomplete:\n%s", out)
	}
}

// TestRunCachedRerunByteIdentical drives the -cachedir path end to end:
// a cold run fills the directory, the warm rerun must write the same
// bytes to stdout, and -format json must replay from the same entries.
func TestRunCachedRerunByteIdentical(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-exp", "table2", "-rounds", "1", "-cachedir", dir}
	var cold strings.Builder
	if err := run(context.Background(), args, &cold); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries written: %v, %v", entries, err)
	}
	var warm strings.Builder
	if err := run(context.Background(), args, &warm); err != nil {
		t.Fatal(err)
	}
	if cold.String() != warm.String() {
		t.Errorf("warm rerun diverged:\n%s\nvs\n%s", warm.String(), cold.String())
	}

	var asJSON strings.Builder
	if err := run(context.Background(), append(args, "-format", "json"), &asJSON); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(asJSON.String()), &doc); err != nil {
		t.Fatalf("cached json output does not parse: %v", err)
	}

	// An uncached run must produce the same report — the cache may never
	// change results, only skip simulation.
	var uncached strings.Builder
	if err := run(context.Background(), []string{"-exp", "table2", "-rounds", "1"}, &uncached); err != nil {
		t.Fatal(err)
	}
	if uncached.String() != cold.String() {
		t.Errorf("cached run diverged from uncached:\n%s\nvs\n%s", cold.String(), uncached.String())
	}
}
