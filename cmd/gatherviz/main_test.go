package main

import (
	"strings"
	"testing"
)

func TestRunDefaultExample(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{
		"6x6 mesh", "GLOBAL BUFFER", "hops: 15", "hops: 5", "(G)", "(P)",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestRunCustomSize(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-size", "8", "-row", "0"}, &b); err != nil {
		t.Fatal(err)
	}
	// 8-wide row: unicast 7+6+...+0 = 28 hops, gather 7.
	out := b.String()
	if !strings.Contains(out, "hops: 28") || !strings.Contains(out, "hops: 7") {
		t.Errorf("hop counts wrong:\n%s", out)
	}
}

func TestRunMerges(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-size", "4", "-row", "1", "-merges"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{
		"per-router payload pickups",
		// 4-wide row, columns 1..3 each piggyback/merge exactly once.
		"gather uploads: (0)---(1)---(1)---(1)",
		"ina merges:    (0)---(1)---(1)---(1)",
		"[2 sink flits]",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	cases := [][]string{
		{"-size", "1"},
		{"-size", "100"},
		{"-row", "-1"},
		{"-row", "6"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
