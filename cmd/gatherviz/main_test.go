package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultExample(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{
		"6x6 mesh", "GLOBAL BUFFER", "hops: 15", "hops: 5", "(G)", "(P)",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestRunCustomSize(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-size", "8", "-row", "0"}, &b); err != nil {
		t.Fatal(err)
	}
	// 8-wide row: unicast 7+6+...+0 = 28 hops, gather 7.
	out := b.String()
	if !strings.Contains(out, "hops: 28") || !strings.Contains(out, "hops: 7") {
		t.Errorf("hop counts wrong:\n%s", out)
	}
}

func TestRunMerges(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-size", "4", "-row", "1", "-merges"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{
		"per-router payload pickups",
		// 4-wide row, columns 1..3 each piggyback/merge exactly once.
		"gather uploads: (0)---(1)---(1)---(1)",
		"ina merges:    (0)---(1)---(1)---(1)",
		"[2 sink flits]",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

// writeMetricsFixture writes a small telemetry metrics CSV: a 2x2 router
// grid over two epochs with a load gradient, plus a NIC row so the kind
// filter has something to exclude.
func writeMetricsFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "metrics.csv")
	csv := `epoch,cycle,kind,id,name,row,col,field,value,per_cycle
0,63,router,0,r0,0,0,buffer_writes,0,0.0000
0,63,router,1,r1,0,1,buffer_writes,4,0.0625
0,63,router,2,r2,1,0,buffer_writes,8,0.1250
0,63,router,3,r3,1,1,buffer_writes,16,0.2500
1,127,router,0,r0,0,0,buffer_writes,0,0.0000
1,127,router,1,r1,0,1,buffer_writes,4,0.0625
1,127,router,2,r2,1,0,buffer_writes,8,0.1250
1,127,router,3,r3,1,1,buffer_writes,16,0.2500
0,63,nic,0,n0,0,0,packets_injected,2,0.0312
`
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunMetricsHeatmap(t *testing.T) {
	path := writeMetricsFixture(t)
	var b strings.Builder
	if err := run([]string{"-metrics", path}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{
		"router buffer_writes over 2 epochs",
		"peak 32",
		".:", // row 0: idle r0, low r1
		"=@", // row 1: mid r2, peak r3
		"hottest:",
		"r3       (1,1)  32",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestRunMetricsUnknownField(t *testing.T) {
	path := writeMetricsFixture(t)
	var b strings.Builder
	err := run([]string{"-metrics", path, "-field", "bogus"}, &b)
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	// The error names the fields the CSV actually has for the kind.
	if !strings.Contains(err.Error(), "buffer_writes") {
		t.Errorf("error does not list known fields: %v", err)
	}
	if err := run([]string{"-metrics", "/nonexistent/metrics.csv"}, &b); err == nil {
		t.Error("missing metrics file accepted")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	cases := [][]string{
		{"-size", "1"},
		{"-size", "100"},
		{"-row", "-1"},
		{"-row", "6"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
