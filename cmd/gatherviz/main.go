// Command gatherviz renders the paper's Fig. 1 motivating example as ASCII
// art: collecting one mesh row's results into the global buffer with
// repetitive unicast versus a single gather packet, with hop counts. With
// -merges it additionally simulates the row collection on the
// cycle-accurate network in both gather and in-network-accumulation modes
// and renders each router's measured payload uploads and operand merges.
//
// With -metrics it instead renders congestion heatmaps from a telemetry
// epoch-metrics CSV produced by nocsim -metrics (DESIGN.md §11): one
// ASCII grid per requested field, each cell the field's total over the
// run at that grid position.
//
// Usage:
//
//	gatherviz            # the paper's 6x6 example, row 2
//	gatherviz -size 8 -row 0
//	gatherviz -merges    # simulated per-router upload/merge counts
//	nocsim -rate 0.02 -metrics m.csv && gatherviz -metrics m.csv
//	gatherviz -metrics m.csv -field gather_uploads -kind router
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"gathernoc/internal/flit"
	"gathernoc/internal/noc"
	"gathernoc/internal/telemetry"
	"gathernoc/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gatherviz:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("gatherviz", flag.ContinueOnError)
	size := fs.Int("size", 6, "mesh dimension")
	row := fs.Int("row", 2, "row whose PEs send to the global buffer")
	merges := fs.Bool("merges", false, "simulate the row collection and render per-router gather uploads and accumulation merges")
	metrics := fs.String("metrics", "", "render congestion heatmaps from a nocsim -metrics CSV instead of the Fig. 1 example")
	field := fs.String("field", "buffer_writes", "metrics field to render (with -metrics)")
	kind := fs.String("kind", "router", "metrics source kind to render (with -metrics): router, nic, sink")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *metrics != "" {
		return renderMetrics(w, *metrics, *kind, *field)
	}
	if *size < 2 || *size > 32 {
		return fmt.Errorf("size %d out of range [2,32]", *size)
	}
	if *row < 0 || *row >= *size {
		return fmt.Errorf("row %d out of range", *row)
	}

	m := topology.MustMesh(*size, *size)
	dst := m.ID(topology.Coord{Row: *row, Col: *size - 1})

	fmt.Fprintf(w, "Fig. 1 — %dx%d mesh, row %d sends results to the global buffer (east edge)\n\n", *size, *size, *row)

	fmt.Fprintf(w, "(a) repetitive unicast: one packet per PE\n")
	drawMesh(w, *size, *row, 'u')
	total := 0
	for c := 0; c < *size; c++ {
		total += m.Hops(m.ID(topology.Coord{Row: *row, Col: c}), dst)
	}
	fmt.Fprintf(w, "    packets: %d, router-to-router hops: %d\n\n", *size, total)

	fmt.Fprintf(w, "(b) gather: one packet collects the row\n")
	drawMesh(w, *size, *row, 'g')
	fmt.Fprintf(w, "    packets: 1, router-to-router hops: %d\n",
		m.Hops(m.ID(topology.Coord{Row: *row, Col: 0}), dst))

	if *merges {
		fmt.Fprintf(w, "\n(c) simulated row collection: per-router payload pickups\n")
		if err := drawPickups(w, *size, *row); err != nil {
			return err
		}
	}
	return nil
}

// simulateRow runs one row collection on a size×size network in the given
// scheme ("gather" or "ina") and returns each column's payload pickup
// count — gather uploads or accumulation merges — plus the flits the sink
// consumed.
func simulateRow(size, row int, ina bool) ([]uint64, uint64, error) {
	cfg := noc.DefaultConfig(size, size)
	cfg.EnableINA = true
	nw, err := noc.New(cfg)
	if err != nil {
		return nil, 0, err
	}
	m := nw.Mesh()
	dst := nw.RowSinkID(row)
	for col := 1; col < size; col++ {
		id := m.ID(topology.Coord{Row: row, Col: col})
		p := flit.Payload{Seq: uint64(col), Src: id, Dst: dst, Value: uint64(col), Ops: 1}
		if ina {
			nw.NIC(id).SetReduceDelta(cfg.Delta * int64(1+col))
			nw.NIC(id).SubmitReduceOperand(p)
		} else {
			nw.NIC(id).SetDelta(cfg.Delta * int64(1+col))
			nw.NIC(id).SubmitGatherPayload(p)
		}
	}
	left := m.ID(topology.Coord{Row: row, Col: 0})
	own := flit.Payload{Seq: 0, Src: left, Dst: dst, Value: 0, Ops: 1}
	if ina {
		nw.NIC(left).SendAccumulate(dst, 0, own)
	} else {
		nw.NIC(left).SendGather(dst, &own)
	}
	if _, err := nw.RunUntilQuiescent(1_000_000); err != nil {
		return nil, 0, err
	}
	counts := make([]uint64, size)
	for col := 0; col < size; col++ {
		r := nw.Router(m.ID(topology.Coord{Row: row, Col: col}))
		if ina {
			counts[col] = r.Counters.ReduceMerges.Value()
		} else {
			counts[col] = r.Counters.GatherUploads.Value()
		}
	}
	return counts, nw.Sink(row).Ejector().FlitsEjected.Value(), nil
}

// drawPickups renders the simulated per-router pickup counts for the
// gather and INA collections of one row.
func drawPickups(w io.Writer, size, row int) error {
	for _, mode := range []struct {
		name string
		ina  bool
	}{{"gather uploads", false}, {"ina merges", true}} {
		counts, sinkFlits, err := simulateRow(size, row, mode.ina)
		if err != nil {
			return err
		}
		cells := make([]string, size)
		for col, c := range counts {
			cells[col] = fmt.Sprintf("(%d)", c)
		}
		fmt.Fprintf(w, "    %-14s %s-->[%d sink flits]\n",
			mode.name+":", strings.Join(cells, "---"), sinkFlits)
	}
	fmt.Fprintf(w, "    (n) = payloads picked up at that router as the packet passed\n")
	return nil
}

// heatGlyphs maps normalized load to increasing intensity (the idiom of
// noc.UtilizationHeatmap).
var heatGlyphs = []byte{'.', ':', '-', '=', '+', '*', '#', '@'}

// renderMetrics reads a telemetry epoch-metrics CSV and renders the chosen
// field of the chosen source kind as an ASCII heatmap over the grid, with
// each source's value summed (delta fields) across every retained epoch,
// plus the hottest cells.
func renderMetrics(w io.Writer, path, kind, field string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	pts, err := telemetry.ReadMetricsCSV(f)
	if err != nil {
		return err
	}

	type cell struct {
		row, col int
		name     string
		total    int64
	}
	byID := map[int]*cell{}
	rows, cols, epochs := 0, 0, map[int64]bool{}
	fields := map[string]bool{}
	for _, p := range pts {
		if p.Kind != kind {
			continue
		}
		fields[p.Field] = true
		epochs[p.Epoch] = true
		if p.Field != field || p.Row < 0 || p.Col < 0 {
			continue
		}
		c := byID[p.ID]
		if c == nil {
			c = &cell{row: p.Row, col: p.Col, name: p.Name}
			byID[p.ID] = c
		}
		c.total += p.Value
		if p.Row >= rows {
			rows = p.Row + 1
		}
		if p.Col >= cols {
			cols = p.Col + 1
		}
	}
	if len(byID) == 0 {
		known := make([]string, 0, len(fields))
		for k := range fields {
			known = append(known, k)
		}
		sort.Strings(known)
		return fmt.Errorf("no %s/%s data in %s (kind %q has fields: %s)",
			kind, field, path, kind, strings.Join(known, ", "))
	}

	var peak int64
	cells := make([]*cell, 0, len(byID))
	for _, c := range byID {
		cells = append(cells, c)
		if c.total > peak {
			peak = c.total
		}
	}
	fmt.Fprintf(w, "%s %s over %d epochs (%s), peak %d\n\n", kind, field, len(epochs), path, peak)
	grid := make([][]int64, rows)
	have := make([][]bool, rows)
	for r := range grid {
		grid[r] = make([]int64, cols)
		have[r] = make([]bool, cols)
	}
	for _, c := range cells {
		grid[c.row][c.col] = c.total
		have[c.row][c.col] = true
	}
	for r := 0; r < rows; r++ {
		var b strings.Builder
		b.WriteString("    ")
		for c := 0; c < cols; c++ {
			switch {
			case !have[r][c]:
				b.WriteByte(' ')
			case peak == 0 || grid[r][c] == 0:
				b.WriteByte(heatGlyphs[0])
			default:
				idx := int(grid[r][c] * int64(len(heatGlyphs)-1) / peak)
				if idx >= len(heatGlyphs) {
					idx = len(heatGlyphs) - 1
				}
				b.WriteByte(heatGlyphs[idx])
			}
		}
		fmt.Fprintln(w, b.String())
	}
	fmt.Fprintf(w, "\n    %s = idle .. %s = peak\n\n", string(heatGlyphs[0]), string(heatGlyphs[len(heatGlyphs)-1]))

	sort.Slice(cells, func(i, j int) bool {
		if cells[i].total != cells[j].total {
			return cells[i].total > cells[j].total
		}
		return cells[i].name < cells[j].name
	})
	n := 5
	if len(cells) < n {
		n = len(cells)
	}
	fmt.Fprintf(w, "    hottest:\n")
	for _, c := range cells[:n] {
		fmt.Fprintf(w, "    %-8s (%d,%d)  %d\n", c.name, c.row, c.col, c.total)
	}
	return nil
}

// drawMesh prints the mesh with the active row highlighted. mode 'u' shows
// per-node unicast packets, 'g' shows a single gather packet sweeping east.
func drawMesh(w io.Writer, size, row int, mode byte) {
	for r := 0; r < size; r++ {
		var cells []string
		for c := 0; c < size; c++ {
			switch {
			case r != row:
				cells = append(cells, "( )")
			case mode == 'u':
				cells = append(cells, "(P)")
			case c == 0:
				cells = append(cells, "(G)")
			default:
				cells = append(cells, "(+)")
			}
		}
		sep := "---"
		line := strings.Join(cells, sep)
		if r == row {
			line += "-->[GLOBAL BUFFER]"
		}
		fmt.Fprintf(w, "    %s\n", line)
	}
	switch mode {
	case 'u':
		fmt.Fprintf(w, "    (P) = PE sending its own unicast packet\n")
	case 'g':
		fmt.Fprintf(w, "    (G) = gather initiator, (+) = payload piggybacked en route\n")
	}
}
