// Command gatherviz renders the paper's Fig. 1 motivating example as ASCII
// art: collecting one mesh row's results into the global buffer with
// repetitive unicast versus a single gather packet, with hop counts.
//
// Usage:
//
//	gatherviz            # the paper's 6x6 example, row 2
//	gatherviz -size 8 -row 0
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gathernoc/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gatherviz:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("gatherviz", flag.ContinueOnError)
	size := fs.Int("size", 6, "mesh dimension")
	row := fs.Int("row", 2, "row whose PEs send to the global buffer")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *size < 2 || *size > 32 {
		return fmt.Errorf("size %d out of range [2,32]", *size)
	}
	if *row < 0 || *row >= *size {
		return fmt.Errorf("row %d out of range", *row)
	}

	m := topology.MustMesh(*size, *size)
	dst := m.ID(topology.Coord{Row: *row, Col: *size - 1})

	fmt.Fprintf(w, "Fig. 1 — %dx%d mesh, row %d sends results to the global buffer (east edge)\n\n", *size, *size, *row)

	fmt.Fprintf(w, "(a) repetitive unicast: one packet per PE\n")
	drawMesh(w, *size, *row, 'u')
	total := 0
	for c := 0; c < *size; c++ {
		total += m.Hops(m.ID(topology.Coord{Row: *row, Col: c}), dst)
	}
	fmt.Fprintf(w, "    packets: %d, router-to-router hops: %d\n\n", *size, total)

	fmt.Fprintf(w, "(b) gather: one packet collects the row\n")
	drawMesh(w, *size, *row, 'g')
	fmt.Fprintf(w, "    packets: 1, router-to-router hops: %d\n",
		m.Hops(m.ID(topology.Coord{Row: *row, Col: 0}), dst))
	return nil
}

// drawMesh prints the mesh with the active row highlighted. mode 'u' shows
// per-node unicast packets, 'g' shows a single gather packet sweeping east.
func drawMesh(w io.Writer, size, row int, mode byte) {
	for r := 0; r < size; r++ {
		var cells []string
		for c := 0; c < size; c++ {
			switch {
			case r != row:
				cells = append(cells, "( )")
			case mode == 'u':
				cells = append(cells, "(P)")
			case c == 0:
				cells = append(cells, "(G)")
			default:
				cells = append(cells, "(+)")
			}
		}
		sep := "---"
		line := strings.Join(cells, sep)
		if r == row {
			line += "-->[GLOBAL BUFFER]"
		}
		fmt.Fprintf(w, "    %s\n", line)
	}
	switch mode {
	case 'u':
		fmt.Fprintf(w, "    (P) = PE sending its own unicast packet\n")
	case 'g':
		fmt.Fprintf(w, "    (G) = gather initiator, (+) = payload piggybacked en route\n")
	}
}
