// Command gatherviz renders the paper's Fig. 1 motivating example as ASCII
// art: collecting one mesh row's results into the global buffer with
// repetitive unicast versus a single gather packet, with hop counts. With
// -merges it additionally simulates the row collection on the
// cycle-accurate network in both gather and in-network-accumulation modes
// and renders each router's measured payload uploads and operand merges.
//
// Usage:
//
//	gatherviz            # the paper's 6x6 example, row 2
//	gatherviz -size 8 -row 0
//	gatherviz -merges    # simulated per-router upload/merge counts
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gathernoc/internal/flit"
	"gathernoc/internal/noc"
	"gathernoc/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gatherviz:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("gatherviz", flag.ContinueOnError)
	size := fs.Int("size", 6, "mesh dimension")
	row := fs.Int("row", 2, "row whose PEs send to the global buffer")
	merges := fs.Bool("merges", false, "simulate the row collection and render per-router gather uploads and accumulation merges")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *size < 2 || *size > 32 {
		return fmt.Errorf("size %d out of range [2,32]", *size)
	}
	if *row < 0 || *row >= *size {
		return fmt.Errorf("row %d out of range", *row)
	}

	m := topology.MustMesh(*size, *size)
	dst := m.ID(topology.Coord{Row: *row, Col: *size - 1})

	fmt.Fprintf(w, "Fig. 1 — %dx%d mesh, row %d sends results to the global buffer (east edge)\n\n", *size, *size, *row)

	fmt.Fprintf(w, "(a) repetitive unicast: one packet per PE\n")
	drawMesh(w, *size, *row, 'u')
	total := 0
	for c := 0; c < *size; c++ {
		total += m.Hops(m.ID(topology.Coord{Row: *row, Col: c}), dst)
	}
	fmt.Fprintf(w, "    packets: %d, router-to-router hops: %d\n\n", *size, total)

	fmt.Fprintf(w, "(b) gather: one packet collects the row\n")
	drawMesh(w, *size, *row, 'g')
	fmt.Fprintf(w, "    packets: 1, router-to-router hops: %d\n",
		m.Hops(m.ID(topology.Coord{Row: *row, Col: 0}), dst))

	if *merges {
		fmt.Fprintf(w, "\n(c) simulated row collection: per-router payload pickups\n")
		if err := drawPickups(w, *size, *row); err != nil {
			return err
		}
	}
	return nil
}

// simulateRow runs one row collection on a size×size network in the given
// scheme ("gather" or "ina") and returns each column's payload pickup
// count — gather uploads or accumulation merges — plus the flits the sink
// consumed.
func simulateRow(size, row int, ina bool) ([]uint64, uint64, error) {
	cfg := noc.DefaultConfig(size, size)
	cfg.EnableINA = true
	nw, err := noc.New(cfg)
	if err != nil {
		return nil, 0, err
	}
	m := nw.Mesh()
	dst := nw.RowSinkID(row)
	for col := 1; col < size; col++ {
		id := m.ID(topology.Coord{Row: row, Col: col})
		p := flit.Payload{Seq: uint64(col), Src: id, Dst: dst, Value: uint64(col), Ops: 1}
		if ina {
			nw.NIC(id).SetReduceDelta(cfg.Delta * int64(1+col))
			nw.NIC(id).SubmitReduceOperand(p)
		} else {
			nw.NIC(id).SetDelta(cfg.Delta * int64(1+col))
			nw.NIC(id).SubmitGatherPayload(p)
		}
	}
	left := m.ID(topology.Coord{Row: row, Col: 0})
	own := flit.Payload{Seq: 0, Src: left, Dst: dst, Value: 0, Ops: 1}
	if ina {
		nw.NIC(left).SendAccumulate(dst, 0, own)
	} else {
		nw.NIC(left).SendGather(dst, &own)
	}
	if _, err := nw.RunUntilQuiescent(1_000_000); err != nil {
		return nil, 0, err
	}
	counts := make([]uint64, size)
	for col := 0; col < size; col++ {
		r := nw.Router(m.ID(topology.Coord{Row: row, Col: col}))
		if ina {
			counts[col] = r.Counters.ReduceMerges.Value()
		} else {
			counts[col] = r.Counters.GatherUploads.Value()
		}
	}
	return counts, nw.Sink(row).Ejector().FlitsEjected.Value(), nil
}

// drawPickups renders the simulated per-router pickup counts for the
// gather and INA collections of one row.
func drawPickups(w io.Writer, size, row int) error {
	for _, mode := range []struct {
		name string
		ina  bool
	}{{"gather uploads", false}, {"ina merges", true}} {
		counts, sinkFlits, err := simulateRow(size, row, mode.ina)
		if err != nil {
			return err
		}
		cells := make([]string, size)
		for col, c := range counts {
			cells[col] = fmt.Sprintf("(%d)", c)
		}
		fmt.Fprintf(w, "    %-14s %s-->[%d sink flits]\n",
			mode.name+":", strings.Join(cells, "---"), sinkFlits)
	}
	fmt.Fprintf(w, "    (n) = payloads picked up at that router as the packet passed\n")
	return nil
}

// drawMesh prints the mesh with the active row highlighted. mode 'u' shows
// per-node unicast packets, 'g' shows a single gather packet sweeping east.
func drawMesh(w io.Writer, size, row int, mode byte) {
	for r := 0; r < size; r++ {
		var cells []string
		for c := 0; c < size; c++ {
			switch {
			case r != row:
				cells = append(cells, "( )")
			case mode == 'u':
				cells = append(cells, "(P)")
			case c == 0:
				cells = append(cells, "(G)")
			default:
				cells = append(cells, "(+)")
			}
		}
		sep := "---"
		line := strings.Join(cells, sep)
		if r == row {
			line += "-->[GLOBAL BUFFER]"
		}
		fmt.Fprintf(w, "    %s\n", line)
	}
	switch mode {
	case 'u':
		fmt.Fprintf(w, "    (P) = PE sending its own unicast packet\n")
	case 'g':
		fmt.Fprintf(w, "    (G) = gather initiator, (+) = payload piggybacked en route\n")
	}
}
