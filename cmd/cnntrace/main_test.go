package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gathernoc/internal/traffic"
)

func TestRunEmitsGatherTrace(t *testing.T) {
	var b bytes.Buffer
	err := run([]string{"-model", "alexnet", "-layer", "Conv3", "-rows", "4", "-cols", "4", "-mode", "gather"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	events, err := traffic.Read(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 16 {
		t.Fatalf("events = %d, want 16", len(events))
	}
	gathers := 0
	for _, e := range events {
		if e.Type == traffic.EventGather {
			gathers++
		}
	}
	if gathers != 4 {
		t.Errorf("gather initiations = %d, want 4 (one per row)", gathers)
	}
}

func TestRunEmitsRUTrace(t *testing.T) {
	var b bytes.Buffer
	if err := run([]string{"-mode", "ru", "-rows", "4", "-cols", "4"}, &b); err != nil {
		t.Fatal(err)
	}
	events, err := traffic.Read(&b)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Type != traffic.EventUnicast {
			t.Errorf("RU trace contains %s", e.Type)
		}
	}
}

func TestRunMultipleRoundsOrdered(t *testing.T) {
	var b bytes.Buffer
	if err := run([]string{"-rounds", "3", "-rows", "4", "-cols", "4"}, &b); err != nil {
		t.Fatal(err)
	}
	events, err := traffic.Read(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 48 {
		t.Fatalf("events = %d, want 48", len(events))
	}
	last := int64(-1)
	for i, e := range events {
		if e.Cycle < last {
			t.Fatalf("event %d out of order", i)
		}
		last = e.Cycle
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.jsonl")
	var b bytes.Buffer
	if err := run([]string{"-o", path, "-rows", "4", "-cols", "4"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "wrote 16 events") {
		t.Errorf("status line missing: %q", b.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := traffic.Read(f)
	if err != nil || len(events) != 16 {
		t.Fatalf("file contents: %d events, err %v", len(events), err)
	}
}

func TestRunVGGModels(t *testing.T) {
	var b bytes.Buffer
	if err := run([]string{"-model", "vgg16", "-layer", "Conv2"}, &b); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := run([]string{"-model", "vgg16all", "-layer", "Conv3-2"}, &b); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	cases := [][]string{
		{"-model", "resnet"},
		{"-layer", "Conv99"},
		{"-mode", "teleport"},
		{"-rounds", "0"},
	}
	for _, args := range cases {
		var b bytes.Buffer
		if err := run(args, &b); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
