// Command cnntrace generates the per-layer result-collection traffic
// traces the paper derives from AlexNet and VGG-16 (Table III), in the
// repository's JSON-lines trace format, for replay with nocsim -replay.
//
// Usage:
//
//	cnntrace -model alexnet -layer Conv3 -rows 8 -cols 8 -mode gather -o conv3.trace
//	cnntrace -model vgg16 -layer Conv1 -mode ru -rounds 3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gathernoc/internal/cnn"
	"gathernoc/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cnntrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cnntrace", flag.ContinueOnError)
	var (
		model  = fs.String("model", "alexnet", "model (alexnet, vgg16, vgg16all)")
		name   = fs.String("layer", "Conv1", "layer name from Table III")
		rows   = fs.Int("rows", 8, "mesh rows")
		cols   = fs.Int("cols", 8, "mesh columns")
		mode   = fs.String("mode", "gather", "collection mode (gather, ru)")
		rounds = fs.Int("rounds", 1, "rounds to emit")
		tmac   = fs.Int("tmac", 5, "MAC latency in cycles")
		out    = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var layers []cnn.LayerConfig
	switch strings.ToLower(*model) {
	case "alexnet":
		layers = cnn.AlexNetConvLayers()
	case "vgg16":
		layers = cnn.VGG16SelectedConvLayers()
	case "vgg16all":
		layers = cnn.VGG16AllConvLayers()
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	layer, ok := cnn.LayerByName(layers, *name)
	if !ok {
		var names []string
		for _, l := range layers {
			names = append(names, l.Name)
		}
		return fmt.Errorf("unknown layer %q (have %s)", *name, strings.Join(names, ", "))
	}

	gather := false
	switch strings.ToLower(*mode) {
	case "gather":
		gather = true
	case "ru", "unicast":
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	if *rounds < 1 {
		return fmt.Errorf("rounds must be >= 1")
	}
	var events []traffic.Event
	roundLen := int64(layer.MACsPerPE() + *tmac)
	sinkBase := *rows * *cols
	for r := 0; r < *rounds; r++ {
		start := int64(r)*roundLen + roundLen
		events = append(events, traffic.GenerateLayerTrace(layer, *rows, *cols, gather, start, sinkBase)...)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := traffic.Write(w, events); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(stdout, "wrote %d events for %s (%d round(s), %s) to %s\n",
			len(events), layer, *rounds, *mode, *out)
	}
	return nil
}
