package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gathernoc/internal/sim"
	"gathernoc/internal/telemetry"
	"gathernoc/internal/traffic"
)

func TestRunSynthetic(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-rows", "4", "-cols", "4", "-pattern", "uniform",
		"-rate", "0.02", "-warmup", "100", "-measure", "500",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{"mesh", "injected", "received", "latency", "throughput"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestRunAllPatterns(t *testing.T) {
	for _, p := range []string{"uniform", "transpose", "bitcomplement", "hotspot"} {
		var b strings.Builder
		err := run([]string{
			"-rows", "4", "-cols", "4", "-pattern", p,
			"-rate", "0.01", "-warmup", "50", "-measure", "200",
		}, &b)
		if err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

func TestRunTorusSynthetic(t *testing.T) {
	for _, routing := range []string{"xy", "oddeven", "westfirst"} {
		var b strings.Builder
		err := run([]string{
			"-topology", "torus", "-routing", routing,
			"-rows", "4", "-cols", "4", "-pattern", "uniform",
			"-rate", "0.02", "-warmup", "100", "-measure", "400",
		}, &b)
		if err != nil {
			t.Fatalf("%s: %v", routing, err)
		}
		if !strings.Contains(b.String(), "torus") {
			t.Errorf("%s: output missing fabric name:\n%s", routing, b.String())
		}
	}
}

func TestRunTorusINA(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-topology", "torus", "-rows", "4", "-cols", "4",
		"-ina", "-inamode", "ina", "-inarounds", "2",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "oracle         exact row sums") {
		t.Errorf("output missing oracle confirmation:\n%s", b.String())
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	cases := [][]string{
		{"-pattern", "bogus"},
		{"-rows", "0"},
		{"-rate", "2.0"},
		{"-vcs", "0"},
		{"-topology", "hypercube"},
		{"-routing", "zigzag"},
		{"-topology", "torus", "-vcs", "1"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunTraceReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	events := []traffic.Event{
		{Cycle: 0, Type: traffic.EventUnicast, Src: 0, Dst: 5, Seq: 1, Value: 9},
		{Cycle: 3, Type: traffic.EventUnicast, Src: 1, Dst: 6, Seq: 2, Value: 8},
	}
	if err := traffic.Write(f, events); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var b strings.Builder
	if err := run([]string{"-rows", "4", "-cols", "4", "-replay", path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "replayed       2 events") {
		t.Errorf("output:\n%s", b.String())
	}
}

func TestRunINA(t *testing.T) {
	for _, mode := range []string{"unicast", "gather", "ina"} {
		var b strings.Builder
		err := run([]string{
			"-rows", "4", "-cols", "4", "-ina", "-inamode", mode, "-inarounds", "2",
		}, &b)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		out := b.String()
		for _, frag := range []string{"scheme " + mode, "round latency", "sink flits", "exact row sums"} {
			if !strings.Contains(out, frag) {
				t.Errorf("%s output missing %q:\n%s", mode, frag, out)
			}
		}
	}
}

// TestRunCollective smokes the -collective CLI path over every op and
// transport on both topologies, asserting the oracle verdict in the
// output.
func TestRunCollective(t *testing.T) {
	for _, topo := range []string{"mesh", "torus"} {
		for _, op := range []string{"reduce", "bcast", "allreduce"} {
			for _, alg := range []string{"tree", "flat", "fused"} {
				var b strings.Builder
				err := run([]string{
					"-rows", "4", "-cols", "4", "-topology", topo, "-routing", "xy",
					"-collective", op, "-algorithm", alg, "-rounds", "1",
				}, &b)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", topo, op, alg, err)
				}
				out := b.String()
				for _, frag := range []string{"collective " + op + "/" + alg, "oracle         exact", "root flits"} {
					if !strings.Contains(out, frag) {
						t.Errorf("%s/%s/%s output missing %q:\n%s", topo, op, alg, frag, out)
					}
				}
			}
		}
	}
}

func TestRunCollectiveRejectsBadNames(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-collective", "bogus"}, &b); err == nil {
		t.Error("bogus -collective accepted")
	}
	if err := run([]string{"-collective", "reduce", "-algorithm", "bogus"}, &b); err == nil {
		t.Error("bogus -algorithm accepted")
	}
}

func TestRunINARejectsBadMode(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-ina", "-inamode", "bogus"}, &b); err == nil {
		t.Error("bogus -inamode accepted")
	}
}

func TestRunTraceMissingFile(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-replay", "/nonexistent/file"}, &b); err == nil {
		t.Error("missing trace file accepted")
	}
}

// TestRunTelemetryExports is the end-to-end observability smoke: an 8x8
// INA run with both exports on must leave a Chrome trace that parses as
// JSON with job/phase-tagged events and a metrics CSV whose row count is
// exactly epochs x sources x fields for the epoch length requested.
func TestRunTelemetryExports(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.csv")
	var b strings.Builder
	err := run([]string{
		"-rows", "8", "-cols", "8", "-ina", "-inamode", "ina", "-inarounds", "2",
		"-trace", tracePath, "-metrics", metricsPath,
		"-epoch", "64", "-tracesample", "1",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{"metrics        " + metricsPath, "trace          " + tracePath, "0 dropped"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace is not valid Chrome Trace JSON: %v", err)
	}
	phases := map[string]int{}
	merges := 0
	for _, ev := range trace.TraceEvents {
		phases[ev.Ph]++
		if ev.Name == "ina-merge" {
			merges++
		}
	}
	if phases["b"] == 0 || phases["e"] == 0 || phases["X"] == 0 {
		t.Errorf("trace lacks packet spans or stage slices: %v", phases)
	}
	if merges == 0 {
		t.Error("INA run traced no ina-merge instants")
	}

	f, err := os.Open(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pts, err := telemetry.ReadMetricsCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	epochs := map[int64]int64{}
	perEpoch := map[int64]int{}
	for _, p := range pts {
		epochs[p.Epoch] = p.Cycle
		perEpoch[p.Epoch]++
	}
	if len(epochs) == 0 {
		t.Fatal("metrics CSV has no epochs")
	}
	var rows0 int
	for e, n := range perEpoch {
		if rows0 == 0 {
			rows0 = n
		}
		if n != rows0 {
			t.Errorf("epoch %d has %d rows, others %d — series ragged", e, n, rows0)
		}
	}
	// Every full epoch must end on a 64-cycle boundary; only the flushed
	// final partial epoch may not.
	var last int64 = -1
	for e := range epochs {
		if e > last {
			last = e
		}
	}
	for e, cyc := range epochs {
		if e != last && (cyc+1)%64 != 0 {
			t.Errorf("epoch %d ends at cycle %d, not a 64-cycle boundary", e, cyc)
		}
	}
}

func TestRunPipelineModel(t *testing.T) {
	for _, args := range [][]string{
		{"-model", "alexnet", "-rounds", "1"},
		{"-model", "alexnet", "-rounds", "1", "-jobs", "2", "-overlap"},
		{"-model", "alexnet", "-rounds", "1", "-topology", "torus"},
	} {
		var b strings.Builder
		if err := run(args, &b); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		out := b.String()
		for _, frag := range []string{"alexnet", "oracle         exact", "fairness", "cycles"} {
			if frag == "fairness" && !strings.Contains(strings.Join(args, " "), "-jobs") {
				continue
			}
			if !strings.Contains(out, frag) {
				t.Errorf("%v: output missing %q:\n%s", args, frag, out)
			}
		}
	}
	if err := run([]string{"-model", "lenet"}, &strings.Builder{}); err == nil {
		t.Error("unknown model accepted")
	}
}

// TestRunFaultSmoke drives the synthetic workload over lossy links: the
// run must complete (payload-less synthetic packets simply die; nothing
// retransmits them, so the network drains) and report the fault
// accounting line.
func TestRunFaultSmoke(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-rows", "4", "-cols", "4", "-pattern", "uniform",
		"-rate", "0.02", "-warmup", "100", "-measure", "500",
		"-faultrate", "0.01", "-faultcorrupt", "0.005",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "faults") {
		t.Errorf("output missing fault summary:\n%s", b.String())
	}
}

// TestRunINAFaultRecovery checks the reliability path end to end from the
// CLI: an INA accumulation run over lossy links must finish oracle-exact,
// with the retransmissions that paid for it visible in the summary.
func TestRunINAFaultRecovery(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-rows", "4", "-cols", "4", "-ina", "-inamode", "ina", "-inarounds", "3",
		"-faultrate", "0.05", "-faultseed", "9",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "oracle         exact row sums") {
		t.Errorf("lossy INA run not oracle-exact:\n%s", out)
	}
	if !strings.Contains(out, "faults") {
		t.Errorf("output missing fault summary:\n%s", out)
	}
}

// TestRunWatchdogPartition seeds a permanent router outage that wedges the
// accumulation workload and expects the auto-armed watchdog to convert
// the hang into a stall error carrying the diagnostic dump.
func TestRunWatchdogPartition(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-rows", "4", "-cols", "4", "-ina", "-inamode", "unicast", "-inarounds", "1",
		"-deadrouter", "5", "-watchdog", "2000",
	}, &b)
	if err == nil {
		t.Fatalf("partitioned run completed:\n%s", b.String())
	}
	if !errors.Is(err, sim.ErrStalled) {
		t.Fatalf("want sim.ErrStalled, got %v", err)
	}
	if !strings.Contains(err.Error(), "fault totals") {
		t.Errorf("stall error missing diagnostic dump: %v", err)
	}
}

// TestRunRejectsBadFaultSpecs pins the outage spec parser's error paths.
func TestRunRejectsBadFaultSpecs(t *testing.T) {
	for _, args := range [][]string{
		{"-deadrouter", "x"},
		{"-deadrouter", "5@y"},
		{"-deadrouter", "99"},
		{"-deadlink", "5"},
		{"-deadlink", "0>x"},
		{"-deadlink", "0>1@3:z"},
		{"-faultrate", "1.5"},
	} {
		var b strings.Builder
		if err := run(append([]string{"-rows", "4", "-cols", "4"}, args...), &b); err == nil {
			t.Errorf("%v: accepted", args)
		}
	}
}
