package main

import (
	"encoding/json"
	"fmt"
	"os"

	"gathernoc/internal/noc"
	"gathernoc/internal/traffic"
)

// checkpointFile is the nocsim checkpoint envelope: the full network
// snapshot plus the synthetic-traffic workload state riding above it.
// The traffic pattern is stored by name (Pattern in GeneratorConfig is
// an interface and is cleared before encoding); a resuming process
// reconstructs it against the restored network's topology.
type checkpointFile struct {
	Pattern   string
	Traffic   traffic.GeneratorConfig
	Generator traffic.GeneratorState
	Network   *noc.Snapshot
}

// writeCheckpoint captures the network and generator at the current
// cycle boundary and writes the JSON envelope to path.
func writeCheckpoint(path, patternName string, gcfg traffic.GeneratorConfig, nw *noc.Network, gen *traffic.Generator) error {
	snap, err := nw.Snapshot()
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	gcfg.Pattern = nil
	ck := checkpointFile{
		Pattern:   patternName,
		Traffic:   gcfg,
		Generator: gen.CaptureState(),
		Network:   snap,
	}
	data, err := json.Marshal(&ck)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint parses a checkpoint envelope written by writeCheckpoint.
func loadCheckpoint(path string) (*checkpointFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("resume: %w", err)
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("resume %s: %w", path, err)
	}
	if ck.Network == nil || ck.Network.Version != noc.SnapshotVersion {
		return nil, fmt.Errorf("resume %s: not a nocsim checkpoint (or incompatible version)", path)
	}
	return &ck, nil
}
