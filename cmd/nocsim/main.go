// Command nocsim is a general-purpose cycle-accurate NoC simulator CLI:
// synthetic traffic patterns (uniform, transpose, bitcomplement, hotspot)
// at a configurable injection rate, or replay of a recorded JSON trace.
//
// Usage:
//
//	nocsim -rows 8 -cols 8 -pattern uniform -rate 0.05
//	nocsim -rows 8 -cols 8 -trace conv3.trace
//	nocsim -topology torus -routing xy -rate 0.05 # wraparound fabric
//	nocsim -topology torus -ina -inamode ina      # INA on the torus
//	nocsim -rate 0.005 -cpuprofile cpu.out        # profile a run
//	nocsim -rate 0.005 -memprofile mem.out        # heap profile at exit
//	nocsim -rows 64 -cols 64 -shards 4            # sharded tick loop
//	nocsim -rate 0.005 -alwaystick                # naive engine reference
//	nocsim -ina -inamode ina -inarounds 4         # in-network accumulation
//	nocsim -model alexnet -overlap                # whole-model pipeline
//	nocsim -model alexnet -jobs 4                 # batched inferences
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"

	"gathernoc/internal/noc"
	"gathernoc/internal/traffic"
	"gathernoc/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nocsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("nocsim", flag.ContinueOnError)
	var (
		rows       = fs.Int("rows", 8, "fabric rows")
		cols       = fs.Int("cols", 8, "fabric columns")
		topo       = fs.String("topology", "mesh", "interconnect fabric (mesh, torus)")
		pattern    = fs.String("pattern", "uniform", "traffic pattern (uniform, transpose, bitcomplement, hotspot)")
		rate       = fs.Float64("rate", 0.02, "injection rate (packets/node/cycle)")
		flits      = fs.Int("flits", 2, "packet length in flits")
		warmup     = fs.Int64("warmup", 1000, "warm-up cycles")
		measure    = fs.Int64("measure", 5000, "measurement cycles")
		seed       = fs.Int64("seed", 1, "random seed")
		vcs        = fs.Int("vcs", 4, "virtual channels")
		depth      = fs.Int("depth", 4, "buffer depth in flits")
		routing    = fs.String("routing", "xy", "routing algorithm (xy, westfirst, oddeven)")
		tracePath  = fs.String("trace", "", "replay a JSON trace file instead of synthetic traffic")
		maxCycles  = fs.Int64("maxcycles", 10_000_000, "simulation cycle budget")
		heatmap    = fs.Bool("heatmap", false, "print a per-router utilization heatmap after the run")
		alwaysTick = fs.Bool("alwaystick", false, "disable sleep/wake scheduling (tick every component every cycle)")
		shards     = fs.Int("shards", 0, "row-partitioned tick-loop shards (0 = sequential engine)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write an allocation profile at exit to this file")
		ina        = fs.Bool("ina", false, "run the in-network accumulation workload instead of synthetic traffic")
		inaMode    = fs.String("inamode", "ina", "accumulation collection scheme (unicast, gather, ina)")
		inaRounds  = fs.Int("inarounds", 4, "accumulation rounds to simulate")
		model      = fs.String("model", "", "run a whole-model CNN pipeline workload (alexnet, vgg16) instead of synthetic traffic")
		jobs       = fs.Int("jobs", 1, "concurrent inference jobs of the pipeline workload")
		overlap    = fs.Bool("overlap", false, "double-buffered inter-layer overlap (default: strict barrier)")
		rounds     = fs.Int("rounds", 2, "simulated rounds per pipeline layer")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		// The "allocs" profile keeps every allocation site since process
		// start, which is what the steady-state ratchet work cares about
		// (inuse heap at exit is near zero — the pools hold everything).
		defer func() {
			pprof.Lookup("allocs").WriteTo(f, 0)
			f.Close()
		}()
	}

	cfg := noc.DefaultConfig(*rows, *cols)
	if *topo == "torus" {
		// The torus has no east edge to hang global-buffer sinks off; row
		// collection targets the east-column PEs (noc.RowCollect).
		cfg = noc.DefaultTorusConfig(*rows, *cols)
	} else {
		cfg.Topology = *topo
	}
	cfg.Router.VCs = *vcs
	cfg.Router.BufferDepth = *depth
	cfg.Routing = *routing
	cfg.AlwaysTick = *alwaysTick
	cfg.Shards = *shards
	cfg.EnableINA = *ina
	nw, err := noc.New(cfg)
	if err != nil {
		return err
	}
	defer nw.Close()

	if *model != "" {
		if err := runPipeline(nw, *model, *jobs, *rounds, *overlap, *maxCycles, w); err != nil {
			return err
		}
		if *heatmap {
			fmt.Fprint(w, nw.UtilizationHeatmap())
		}
		return nil
	}

	if *ina {
		if err := runINA(nw, *inaMode, *inaRounds, *maxCycles, w); err != nil {
			return err
		}
		if *heatmap {
			fmt.Fprint(w, nw.UtilizationHeatmap())
		}
		return nil
	}

	if *tracePath != "" {
		if err := replay(nw, *tracePath, *maxCycles, w); err != nil {
			return err
		}
		if *heatmap {
			fmt.Fprint(w, nw.UtilizationHeatmap())
		}
		return nil
	}

	p, err := traffic.PatternByName(*pattern, nw.Mesh())
	if err != nil {
		return err
	}
	gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
		Pattern:       p,
		InjectionRate: *rate,
		PacketFlits:   *flits,
		Warmup:        *warmup,
		Measure:       *measure,
		Seed:          *seed,
	})
	if err != nil {
		return err
	}
	res, err := gen.Run(*maxCycles)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fabric         %dx%d %s (%s routing), %d VCs, depth %d\n",
		*rows, *cols, nw.Topology().Name(), nw.Routing().Name(), *vcs, *depth)
	fmt.Fprintf(w, "pattern        %s @ %.3f pkts/node/cycle\n", p.Name(), *rate)
	fmt.Fprintf(w, "injected       %d packets\n", res.Injected)
	fmt.Fprintf(w, "received       %d packets\n", res.Received)
	fmt.Fprintf(w, "latency        %s\n", res.Latency.String())
	fmt.Fprintf(w, "throughput     %.4f pkts/node/cycle\n", res.Throughput)
	fmt.Fprintf(w, "cycles         %d (incl. drain)\n", res.Cycles)
	a := nw.Activity()
	fmt.Fprintf(w, "link flits     %d\n", a.LinkFlits)
	eng := nw.Engine()
	if total := eng.Evaluated() + eng.Skipped(); total > 0 {
		fmt.Fprintf(w, "evaluations    %d of %d (%.1f%% slept)\n",
			eng.Evaluated(), total, float64(eng.Skipped())/float64(total)*100)
	}
	if *heatmap {
		fmt.Fprint(w, nw.UtilizationHeatmap())
	}
	return nil
}

// runPipeline drives a whole-model CNN inference pipeline — one job per
// batched inference, each a layer-by-layer phase DAG on the shared fabric
// — through the workload scheduler and prints the per-job timeline,
// latency and fairness summary.
func runPipeline(nw *noc.Network, model string, jobCount, rounds int, overlap bool, maxCycles int64, w io.Writer) error {
	layers, err := workload.ModelLayers(model)
	if err != nil {
		return err
	}
	jobs, drivers, err := workload.NewInferenceBatch(nw, jobCount, 5, workload.PipelineConfig{
		Layers:  layers,
		Scheme:  traffic.CollectGather,
		Rounds:  rounds,
		Overlap: overlap,
	})
	if err != nil {
		return err
	}
	s, err := workload.New(nw, jobs)
	if err != nil {
		return err
	}
	res, err := s.Run(maxCycles)
	if err != nil {
		return err
	}
	mode := "barrier"
	if overlap {
		mode = "overlap"
	}
	cfg := nw.Config()
	fmt.Fprintf(w, "workload       %s (%d layers) x %d job(s), %s phases, %d rounds/layer\n",
		model, len(layers), jobCount, mode, rounds)
	fmt.Fprintf(w, "fabric         %dx%d %s (%s routing)\n",
		cfg.Rows, cfg.Cols, cfg.EffectiveTopology(), cfg.EffectiveRouting())
	oracleErrs := 0
	var extrapolated int64
	for j, job := range res.Jobs {
		for _, d := range drivers[j] {
			snap := d.Snapshot()
			oracleErrs += snap.OracleErrors
			extrapolated += snap.TotalCycles
		}
		fmt.Fprintf(w, "job %-10s start %6d done %8d (%8d cycles), %5d packets, latency %s\n",
			job.Name, job.StartCycle, job.DrainedCycle, job.Time(), job.PacketsEjected, job.Latency.String())
	}
	fmt.Fprintf(w, "extrapolated   %d cycles for the full model(s)\n", extrapolated)
	if jobCount > 1 {
		fmt.Fprintf(w, "fairness       max/min slowdown %.3f, Jain %.3f\n", res.MaxMinSlowdown(), res.JainFairness())
	}
	oracle := "exact"
	if oracleErrs != 0 {
		oracle = fmt.Sprintf("%d ERRORS", oracleErrs)
	}
	fmt.Fprintf(w, "oracle         %s row sums\n", oracle)
	fmt.Fprintf(w, "cycles         %d\n", res.Cycles)
	if oracleErrs != 0 {
		return fmt.Errorf("reduction oracle mismatch: %d errors", oracleErrs)
	}
	return nil
}

// runINA drives the accumulation-phase workload: every round each PE
// produces a partial sum and the row's reduction must land at the east
// sink, collected by the chosen scheme and checked against the software
// reduction oracle.
func runINA(nw *noc.Network, mode string, rounds int, maxCycles int64, w io.Writer) error {
	scheme, err := traffic.SchemeByName(mode)
	if err != nil {
		return err
	}
	ctl, err := traffic.NewAccumulationController(nw, traffic.AccumulationConfig{
		Scheme: scheme, Rounds: rounds, ComputeLatency: 10,
	})
	if err != nil {
		return err
	}
	res, err := ctl.Run(maxCycles)
	if err != nil {
		return err
	}
	oracle := "exact"
	if res.OracleErrors != 0 {
		oracle = fmt.Sprintf("%d ERRORS", res.OracleErrors)
	}
	cfg := nw.Config()
	fmt.Fprintf(w, "fabric         %dx%d %s, scheme %s, %d rounds\n",
		cfg.Rows, cfg.Cols, cfg.EffectiveTopology(), scheme, res.Rounds)
	fmt.Fprintf(w, "round latency  %s\n", res.RoundCycles.String())
	fmt.Fprintf(w, "packet latency %s\n", res.PacketLatency.String())
	fmt.Fprintf(w, "sink flits     %d (%.2f per row-reduction)\n", res.SinkFlits, res.SinkFlitsPerRow())
	fmt.Fprintf(w, "sink packets   %d\n", res.SinkPackets)
	fmt.Fprintf(w, "merges         %d in-network, %d self-initiated fallbacks\n", res.Merges, res.SelfInitiated)
	fmt.Fprintf(w, "savings        %s\n", res.Reduction.String())
	fmt.Fprintf(w, "oracle         %s row sums\n", oracle)
	fmt.Fprintf(w, "cycles         %d\n", res.Cycles)
	if res.OracleErrors != 0 {
		return fmt.Errorf("reduction oracle mismatch: %d errors", res.OracleErrors)
	}
	return nil
}

func replay(nw *noc.Network, path string, maxCycles int64, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := traffic.Read(f)
	if err != nil {
		return err
	}
	rp, err := traffic.NewReplayer(nw, events)
	if err != nil {
		return err
	}
	cycles, err := rp.Run(maxCycles)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "replayed       %d events\n", rp.EventsInjected)
	fmt.Fprintf(w, "cycles         %d\n", cycles)
	a := nw.Activity()
	fmt.Fprintf(w, "packets sent   %d\n", a.PacketsSent)
	fmt.Fprintf(w, "link flits     %d\n", a.LinkFlits)
	fmt.Fprintf(w, "gather uploads %d\n", a.GatherUploads)
	return nil
}
