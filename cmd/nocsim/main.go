// Command nocsim is a general-purpose cycle-accurate NoC simulator CLI:
// synthetic traffic patterns (uniform, transpose, bitcomplement, hotspot)
// at a configurable injection rate, or replay of a recorded JSON trace.
//
// Usage:
//
//	nocsim -rows 8 -cols 8 -pattern uniform -rate 0.05
//	nocsim -rows 8 -cols 8 -replay conv3.trace
//	nocsim -topology torus -routing xy -rate 0.05 # wraparound fabric
//	nocsim -topology torus -ina -inamode ina      # INA on the torus
//	nocsim -rate 0.005 -cpuprofile cpu.out        # profile a run
//	nocsim -rate 0.005 -memprofile mem.out        # heap profile at exit
//	nocsim -rows 64 -cols 64 -shards 4            # sharded tick loop
//	nocsim -rate 0.005 -alwaystick                # naive engine reference
//	nocsim -ina -inamode ina -inarounds 4         # in-network accumulation
//	nocsim -collective allreduce -algorithm tree  # mesh-wide collective
//	nocsim -collective bcast -topology torus      # multicast broadcast
//	nocsim -model alexnet -overlap                # whole-model pipeline
//	nocsim -model alexnet -jobs 4                 # batched inferences
//	nocsim -trace trace.json -metrics metrics.csv -epoch 256
//	                                              # telemetry: Perfetto
//	                                              # trace + epoch metrics
//	nocsim -rate 0.02 -faultrate 0.001            # lossy links + recovery
//	nocsim -ina -deadrouter 27@2000               # router dies at cycle 2000
//	nocsim -rate 0.02 -deadlink "0>1,8>9@500:900" # scheduled link outages
//
// Fault injection (DESIGN.md §12) arms the end-to-end retransmission
// machinery and, by default, the stall watchdog: a run wedged by a
// partition exits non-zero with a structured diagnostic dump instead of
// hanging, and the deferred profile/telemetry writers still flush.
//
// A long run answers SIGINT (ctrl-C) by stopping at the next cycle
// boundary and flushing whatever artifacts were requested — profiles,
// telemetry — instead of leaving truncated files behind.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime/pprof"
	"strconv"
	"strings"

	"gathernoc/internal/collective"
	"gathernoc/internal/fault"
	"gathernoc/internal/noc"
	"gathernoc/internal/sim"
	"gathernoc/internal/telemetry"
	"gathernoc/internal/topology"
	"gathernoc/internal/traffic"
	"gathernoc/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nocsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) (err error) {
	fs := flag.NewFlagSet("nocsim", flag.ContinueOnError)
	var (
		rows       = fs.Int("rows", 8, "fabric rows")
		cols       = fs.Int("cols", 8, "fabric columns")
		topo       = fs.String("topology", "mesh", "interconnect fabric (mesh, torus)")
		pattern    = fs.String("pattern", "uniform", "traffic pattern (uniform, transpose, bitcomplement, hotspot)")
		rate       = fs.Float64("rate", 0.02, "injection rate (packets/node/cycle)")
		flits      = fs.Int("flits", 2, "packet length in flits")
		warmup     = fs.Int64("warmup", 1000, "warm-up cycles")
		measure    = fs.Int64("measure", 5000, "measurement cycles")
		seed       = fs.Int64("seed", 1, "random seed")
		vcs        = fs.Int("vcs", 4, "virtual channels")
		depth      = fs.Int("depth", 4, "buffer depth in flits")
		routing    = fs.String("routing", "xy", "routing algorithm (xy, westfirst, oddeven)")
		replayPath = fs.String("replay", "", "replay a JSON trace file instead of synthetic traffic")
		maxCycles  = fs.Int64("maxcycles", 10_000_000, "simulation cycle budget")
		heatmap    = fs.Bool("heatmap", false, "print a per-router utilization heatmap after the run")
		alwaysTick = fs.Bool("alwaystick", false, "disable sleep/wake scheduling (tick every component every cycle)")
		shards     = fs.Int("shards", 0, "row-partitioned tick-loop shards (0 = sequential engine)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write an allocation profile at exit to this file")
		ina        = fs.Bool("ina", false, "run the in-network accumulation workload instead of synthetic traffic")
		inaMode    = fs.String("inamode", "ina", "accumulation collection scheme (unicast, gather, ina)")
		inaRounds  = fs.Int("inarounds", 4, "accumulation rounds to simulate")
		coll       = fs.String("collective", "", "run a mesh-wide collective instead of synthetic traffic (reduce, bcast, allreduce)")
		collAlg    = fs.String("algorithm", "tree", "collective transport (tree, flat, fused)")
		model      = fs.String("model", "", "run a whole-model CNN pipeline workload (alexnet, vgg16) instead of synthetic traffic")
		jobs       = fs.Int("jobs", 1, "concurrent inference jobs of the pipeline workload")
		overlap    = fs.Bool("overlap", false, "double-buffered inter-layer overlap (default: strict barrier)")
		rounds     = fs.Int("rounds", 2, "simulated rounds per pipeline layer")
		traceOut   = fs.String("trace", "", "write a Chrome Trace Event JSON (Perfetto-loadable) of sampled packet lifecycles to this file")
		metricsOut = fs.String("metrics", "", "write per-epoch congestion/utilization metrics CSV to this file")
		epoch      = fs.Int64("epoch", 256, "telemetry metrics snapshot period in cycles (with -metrics)")
		traceEvery = fs.Uint64("tracesample", 64, "trace one packet in N (with -trace; 1 traces everything)")
		faultRate  = fs.Float64("faultrate", 0, "transient flit drop probability per inter-router link traversal")
		faultCorr  = fs.Float64("faultcorrupt", 0, "transient packet corruption probability per inter-router link traversal")
		faultSeed  = fs.Uint64("faultseed", 1, "fault schedule seed")
		deadRouter = fs.String("deadrouter", "", "router outages: node[@from[:until]], comma-separated (no until = permanent)")
		deadLink   = fs.String("deadlink", "", "directed link outages: src>dst[@from[:until]], comma-separated")
		watchdog   = fs.Int64("watchdog", 0, "stall watchdog window in cycles (0 = auto when faults are on, negative disables)")
		ckptPath   = fs.String("checkpoint", "", "write a checkpoint of the synthetic run to this file at -checkpointat, then keep running")
		ckptAt     = fs.Int64("checkpointat", 0, "cycle to take the -checkpoint at")
		resumePath = fs.String("resume", "", "resume a synthetic run from a -checkpoint file (fabric and traffic config come from the file)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Checkpoint/resume covers the synthetic-generator path: workload
	// controllers (pipelines, collectives, INA, replay) hold driver state
	// above the network that snapshots do not capture, and telemetry
	// buffers are observations of one specific run.
	if *ckptPath != "" || *resumePath != "" {
		if *replayPath != "" || *ina || *coll != "" || *model != "" {
			return fmt.Errorf("-checkpoint/-resume apply to the synthetic-traffic path only")
		}
		if *traceOut != "" || *metricsOut != "" {
			return fmt.Errorf("-checkpoint/-resume do not support telemetry")
		}
	}
	if *ckptPath != "" && *ckptAt <= 0 {
		return fmt.Errorf("-checkpoint needs a positive -checkpointat cycle")
	}
	var ck *checkpointFile
	if *resumePath != "" {
		if ck, err = loadCheckpoint(*resumePath); err != nil {
			return err
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		// The "allocs" profile keeps every allocation site since process
		// start, which is what the steady-state ratchet work cares about
		// (inuse heap at exit is near zero — the pools hold everything).
		defer func() {
			pprof.Lookup("allocs").WriteTo(f, 0)
			f.Close()
		}()
	}

	cfg := noc.DefaultConfig(*rows, *cols)
	if *topo == "torus" {
		// The torus has no east edge to hang global-buffer sinks off; row
		// collection targets the east-column PEs (noc.RowCollect).
		cfg = noc.DefaultTorusConfig(*rows, *cols)
	} else {
		cfg.Topology = *topo
	}
	cfg.Router.VCs = *vcs
	cfg.Router.BufferDepth = *depth
	cfg.Routing = *routing
	cfg.AlwaysTick = *alwaysTick
	cfg.Shards = *shards
	cfg.EnableINA = *ina
	if *coll != "" && *collAlg == "fused" {
		// The fused transport reduces in the router stations.
		cfg.EnableINA = true
	}
	fcfg, err := parseFaultFlags(*faultRate, *faultCorr, *faultSeed, *deadRouter, *deadLink)
	if err != nil {
		return err
	}
	cfg.Faults = fcfg
	if *traceOut != "" || *metricsOut != "" {
		tcfg := telemetry.Config{}
		if *metricsOut != "" {
			tcfg.Epoch = *epoch
		}
		if *traceOut != "" {
			tcfg.TraceSample = *traceEvery
		}
		cfg.Telemetry = &tcfg
	}
	if ck != nil {
		// The checkpoint carries the capturing run's full configuration;
		// only the result-invariant execution knobs (engine sharding,
		// sleep/wake) follow this invocation's flags. Everything else is
		// enforced by the config-hash guard inside Restore.
		cfg = ck.Network.Config
		cfg.AlwaysTick = *alwaysTick
		cfg.Shards = *shards
	}
	nw, err := noc.New(cfg)
	if err != nil {
		return err
	}
	defer nw.Close()

	// Telemetry is harvested on every exit path — normal completion,
	// errors and interrupts alike — so a stopped run still leaves usable
	// artifacts. Registered after nw.Close's defer, so it runs first.
	defer func() {
		if ferr := writeTelemetry(nw, *traceOut, *metricsOut, w); ferr != nil && err == nil {
			err = ferr
		}
	}()

	// SIGINT stops the engine at the next cycle boundary; the deferred
	// profile and telemetry writers then flush as usual.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer func() {
		signal.Stop(sig)
		close(sig) // after Stop: releases the handler goroutine
	}()
	go func() {
		if _, ok := <-sig; ok {
			fmt.Fprintln(os.Stderr, "nocsim: interrupt — stopping at the next cycle boundary")
			nw.Engine().Interrupt()
		}
	}()

	// The watchdog arms automatically whenever fault injection is on (the
	// window then defaults to four maximally backed-off retransmission
	// intervals); an explicit positive -watchdog arms it unconditionally and
	// a negative one disables it. A stall propagates as a *sim.StallError —
	// non-zero exit, diagnostic dump — while the deferred writers above
	// still flush the run's artifacts.
	if *watchdog >= 0 && (*watchdog > 0 || nw.FaultInjector() != nil) {
		nw.Engine().SetWatchdog(nw.Watchdog(*watchdog))
	}

	// interruptedOK maps a SIGINT-triggered stop to a clean exit (partial
	// results were already reported; artifacts flush in the defers above).
	interruptedOK := func(err error) error {
		if errors.Is(err, sim.ErrInterrupted) {
			fmt.Fprintf(w, "interrupted    at cycle %d; flushing artifacts\n", nw.Engine().Cycle())
			return nil
		}
		return err
	}

	if *model != "" {
		if err := interruptedOK(runPipeline(nw, *model, *jobs, *rounds, *overlap, *maxCycles, w)); err != nil {
			return err
		}
		faultSummary(nw, w)
		if *heatmap {
			fmt.Fprint(w, nw.UtilizationHeatmap())
		}
		return nil
	}

	if *coll != "" {
		if err := interruptedOK(runCollectiveCLI(nw, *coll, *collAlg, *rounds, *maxCycles, w)); err != nil {
			return err
		}
		faultSummary(nw, w)
		if *heatmap {
			fmt.Fprint(w, nw.UtilizationHeatmap())
		}
		return nil
	}

	if *ina {
		if err := interruptedOK(runINA(nw, *inaMode, *inaRounds, *maxCycles, w)); err != nil {
			return err
		}
		faultSummary(nw, w)
		if *heatmap {
			fmt.Fprint(w, nw.UtilizationHeatmap())
		}
		return nil
	}

	if *replayPath != "" {
		if err := interruptedOK(replay(nw, *replayPath, *maxCycles, w)); err != nil {
			return err
		}
		faultSummary(nw, w)
		if *heatmap {
			fmt.Fprint(w, nw.UtilizationHeatmap())
		}
		return nil
	}

	patternName := *pattern
	gcfg := traffic.GeneratorConfig{
		InjectionRate: *rate,
		PacketFlits:   *flits,
		Warmup:        *warmup,
		Measure:       *measure,
		Seed:          *seed,
	}
	if ck != nil {
		patternName = ck.Pattern
		gcfg = ck.Traffic
	}
	p, err := traffic.PatternByName(patternName, nw.Mesh())
	if err != nil {
		return err
	}
	gcfg.Pattern = p
	gen, err := traffic.NewGenerator(nw, gcfg)
	if err != nil {
		return err
	}
	// Drive the engine directly (the same AddTicker+RunUntil schedule
	// gen.Run uses) so the run can pause at a checkpoint cycle or start
	// from a restored one.
	eng := nw.Engine()
	eng.AddTicker(gen)
	if ck != nil {
		if err := nw.Restore(ck.Network); err != nil {
			return err
		}
		if err := gen.RestoreState(ck.Generator); err != nil {
			return err
		}
		fmt.Fprintf(w, "resumed        %s at cycle %d\n", *resumePath, eng.Cycle())
	}
	if *ckptPath != "" {
		if eng.Cycle() >= *ckptAt {
			return fmt.Errorf("-checkpointat %d is not ahead of cycle %d", *ckptAt, eng.Cycle())
		}
		atCkpt := func() bool { return eng.Cycle() >= *ckptAt }
		if _, err := eng.RunUntil(atCkpt, *maxCycles); err != nil {
			if errors.Is(err, sim.ErrInterrupted) {
				fmt.Fprintf(w, "interrupted    at cycle %d; flushing artifacts\n", eng.Cycle())
				return nil
			}
			return err
		}
		if err := writeCheckpoint(*ckptPath, patternName, gcfg, nw, gen); err != nil {
			return err
		}
		fmt.Fprintf(w, "checkpoint     %s at cycle %d\n", *ckptPath, eng.Cycle())
	}
	done := func() bool { return gen.Injected() && nw.Quiescent() }
	cycles, err := eng.RunUntil(done, *maxCycles)
	if errors.Is(err, sim.ErrInterrupted) {
		fmt.Fprintf(w, "interrupted    at cycle %d; flushing artifacts\n", eng.Cycle())
		return nil
	}
	if err != nil {
		return err
	}
	res := gen.Result(cycles)
	fmt.Fprintf(w, "fabric         %dx%d %s (%s routing), %d VCs, depth %d\n",
		cfg.Rows, cfg.Cols, nw.Topology().Name(), nw.Routing().Name(),
		cfg.Router.VCs, cfg.Router.BufferDepth)
	fmt.Fprintf(w, "pattern        %s @ %.3f pkts/node/cycle\n", p.Name(), gcfg.InjectionRate)
	fmt.Fprintf(w, "injected       %d packets\n", res.Injected)
	fmt.Fprintf(w, "received       %d packets\n", res.Received)
	fmt.Fprintf(w, "latency        %s\n", res.Latency.String())
	fmt.Fprintf(w, "throughput     %.4f pkts/node/cycle\n", res.Throughput)
	fmt.Fprintf(w, "cycles         %d (incl. drain)\n", res.Cycles)
	a := nw.Activity()
	fmt.Fprintf(w, "link flits     %d\n", a.LinkFlits)
	if total := eng.Evaluated() + eng.Skipped(); total > 0 {
		fmt.Fprintf(w, "evaluations    %d of %d (%.1f%% slept)\n",
			eng.Evaluated(), total, float64(eng.Skipped())/float64(total)*100)
	}
	faultSummary(nw, w)
	if *heatmap {
		fmt.Fprint(w, nw.UtilizationHeatmap())
	}
	return nil
}

// parseFaultFlags compiles the fault CLI flags into a fault.Config, nil
// when no fault source was requested (keeping the network bit-identical
// to a fault-free build).
func parseFaultFlags(rate, corrupt float64, seed uint64, deadRouters, deadLinks string) (*fault.Config, error) {
	fc := &fault.Config{Seed: seed, DropRate: rate, CorruptRate: corrupt}
	if deadRouters != "" {
		for _, spec := range strings.Split(deadRouters, ",") {
			name, win, err := parseOutageWindow(strings.TrimSpace(spec))
			if err != nil {
				return nil, fmt.Errorf("deadrouter: %w", err)
			}
			node, err := strconv.Atoi(name)
			if err != nil {
				return nil, fmt.Errorf("deadrouter %q: bad node id: %w", spec, err)
			}
			fc.Routers = append(fc.Routers, fault.RouterOutage{Node: node, Window: win})
		}
	}
	if deadLinks != "" {
		for _, spec := range strings.Split(deadLinks, ",") {
			name, win, err := parseOutageWindow(strings.TrimSpace(spec))
			if err != nil {
				return nil, fmt.Errorf("deadlink: %w", err)
			}
			srcs, dsts, ok := strings.Cut(name, ">")
			if !ok {
				return nil, fmt.Errorf("deadlink %q: want src>dst[@from[:until]]", spec)
			}
			src, err := strconv.Atoi(srcs)
			if err != nil {
				return nil, fmt.Errorf("deadlink %q: bad source node: %w", spec, err)
			}
			dst, err := strconv.Atoi(dsts)
			if err != nil {
				return nil, fmt.Errorf("deadlink %q: bad destination node: %w", spec, err)
			}
			fc.Links = append(fc.Links, fault.LinkOutage{SrcNode: src, DstNode: dst, Window: win})
		}
	}
	if !fc.Enabled() {
		return nil, nil
	}
	return fc, nil
}

// parseOutageWindow splits an outage spec's optional "@from[:until]"
// suffix; no suffix means permanent from cycle 0.
func parseOutageWindow(spec string) (string, fault.Window, error) {
	name, win, found := strings.Cut(spec, "@")
	if !found {
		return name, fault.Window{}, nil
	}
	var w fault.Window
	from, until, hasUntil := strings.Cut(win, ":")
	var err error
	if w.From, err = strconv.ParseInt(from, 10, 64); err != nil {
		return "", w, fmt.Errorf("outage %q: bad from cycle: %w", spec, err)
	}
	if hasUntil {
		if w.Until, err = strconv.ParseInt(until, 10, 64); err != nil {
			return "", w, fmt.Errorf("outage %q: bad until cycle: %w", spec, err)
		}
	}
	return name, w, nil
}

// faultSummary prints the recovery accounting when fault injection was on:
// what the injector destroyed and what the retransmission layer paid to
// survive it.
func faultSummary(nw *noc.Network, w io.Writer) {
	inj := nw.FaultInjector()
	if inj == nil {
		return
	}
	var retr, abandoned uint64
	for id := 0; id < nw.Topology().NumNodes(); id++ {
		n := nw.NIC(topology.NodeID(id))
		retr += n.Retransmits.Value()
		abandoned += n.AbandonedPayloads.Value()
	}
	fmt.Fprintf(w, "faults         %d flits dropped, %d packets corrupted, %d retransmits, %d payloads abandoned\n",
		inj.Drops(), inj.Corrupts(), retr, abandoned)
}

// runPipeline drives a whole-model CNN inference pipeline — one job per
// batched inference, each a layer-by-layer phase DAG on the shared fabric
// — through the workload scheduler and prints the per-job timeline,
// latency and fairness summary.
func runPipeline(nw *noc.Network, model string, jobCount, rounds int, overlap bool, maxCycles int64, w io.Writer) error {
	layers, err := workload.ModelLayers(model)
	if err != nil {
		return err
	}
	jobs, drivers, err := workload.NewInferenceBatch(nw, jobCount, 5, workload.PipelineConfig{
		Layers:  layers,
		Scheme:  traffic.CollectGather,
		Rounds:  rounds,
		Overlap: overlap,
	})
	if err != nil {
		return err
	}
	s, err := workload.New(nw, jobs)
	if err != nil {
		return err
	}
	res, err := s.Run(maxCycles)
	if err != nil {
		return err
	}
	mode := "barrier"
	if overlap {
		mode = "overlap"
	}
	cfg := nw.Config()
	fmt.Fprintf(w, "workload       %s (%d layers) x %d job(s), %s phases, %d rounds/layer\n",
		model, len(layers), jobCount, mode, rounds)
	fmt.Fprintf(w, "fabric         %dx%d %s (%s routing)\n",
		cfg.Rows, cfg.Cols, cfg.EffectiveTopology(), cfg.EffectiveRouting())
	oracleErrs := 0
	var extrapolated int64
	for j, job := range res.Jobs {
		for _, d := range drivers[j] {
			snap := d.Snapshot()
			oracleErrs += snap.OracleErrors
			extrapolated += snap.TotalCycles
		}
		fmt.Fprintf(w, "job %-10s start %6d done %8d (%8d cycles), %5d packets, latency %s\n",
			job.Name, job.StartCycle, job.DrainedCycle, job.Time(), job.PacketsEjected, job.Latency.String())
	}
	fmt.Fprintf(w, "extrapolated   %d cycles for the full model(s)\n", extrapolated)
	if jobCount > 1 {
		fmt.Fprintf(w, "fairness       max/min slowdown %.3f, Jain %.3f\n", res.MaxMinSlowdown(), res.JainFairness())
	}
	oracle := "exact"
	if oracleErrs != 0 {
		oracle = fmt.Sprintf("%d ERRORS", oracleErrs)
	}
	fmt.Fprintf(w, "oracle         %s row sums\n", oracle)
	fmt.Fprintf(w, "cycles         %d\n", res.Cycles)
	if oracleErrs != 0 {
		return fmt.Errorf("reduction oracle mismatch: %d errors", oracleErrs)
	}
	return nil
}

// runCollectiveCLI drives a mesh-wide collective — reduce, broadcast or
// all-reduce over every PE — under the chosen transport and prints the
// round latency, root-port traffic and oracle verdict.
func runCollectiveCLI(nw *noc.Network, opName, algName string, rounds int, maxCycles int64, w io.Writer) error {
	op, err := collective.OpByName(opName)
	if err != nil {
		return err
	}
	alg, err := collective.AlgorithmByName(algName)
	if err != nil {
		return err
	}
	ctl, err := collective.NewController(nw, collective.Config{
		Op: op, Algorithm: alg, Rounds: rounds, ComputeLatency: 10,
	})
	if err != nil {
		return err
	}
	res, err := ctl.Run(maxCycles)
	if err != nil {
		return err
	}
	oracle := "exact"
	if res.OracleErrors != 0 || res.BroadcastErrors != 0 {
		oracle = fmt.Sprintf("%d reduce / %d broadcast ERRORS", res.OracleErrors, res.BroadcastErrors)
	}
	cfg := nw.Config()
	fmt.Fprintf(w, "fabric         %dx%d %s, collective %s/%s, %d rounds\n",
		cfg.Rows, cfg.Cols, cfg.EffectiveTopology(), op, alg, res.Rounds)
	fmt.Fprintf(w, "round latency  %s\n", res.RoundCycles.String())
	fmt.Fprintf(w, "packet latency %s\n", res.PacketLatency.String())
	fmt.Fprintf(w, "root flits     %d in %d packets\n", res.RootFlits, res.RootPackets)
	fmt.Fprintf(w, "merges         %d in-network, %d self-initiated fallbacks\n", res.Merges, res.SelfInitiated)
	fmt.Fprintf(w, "oracle         %s\n", oracle)
	fmt.Fprintf(w, "cycles         %d\n", res.Cycles)
	if res.OracleErrors != 0 || res.BroadcastErrors != 0 {
		return fmt.Errorf("collective verification mismatch")
	}
	return nil
}

// runINA drives the accumulation-phase workload: every round each PE
// produces a partial sum and the row's reduction must land at the east
// sink, collected by the chosen scheme and checked against the software
// reduction oracle.
func runINA(nw *noc.Network, mode string, rounds int, maxCycles int64, w io.Writer) error {
	scheme, err := traffic.SchemeByName(mode)
	if err != nil {
		return err
	}
	ctl, err := traffic.NewAccumulationController(nw, traffic.AccumulationConfig{
		Scheme: scheme, Rounds: rounds, ComputeLatency: 10,
	})
	if err != nil {
		return err
	}
	res, err := ctl.Run(maxCycles)
	if err != nil {
		return err
	}
	oracle := "exact"
	if res.OracleErrors != 0 {
		oracle = fmt.Sprintf("%d ERRORS", res.OracleErrors)
	}
	cfg := nw.Config()
	fmt.Fprintf(w, "fabric         %dx%d %s, scheme %s, %d rounds\n",
		cfg.Rows, cfg.Cols, cfg.EffectiveTopology(), scheme, res.Rounds)
	fmt.Fprintf(w, "round latency  %s\n", res.RoundCycles.String())
	fmt.Fprintf(w, "packet latency %s\n", res.PacketLatency.String())
	fmt.Fprintf(w, "sink flits     %d (%.2f per row-reduction)\n", res.SinkFlits, res.SinkFlitsPerRow())
	fmt.Fprintf(w, "sink packets   %d\n", res.SinkPackets)
	fmt.Fprintf(w, "merges         %d in-network, %d self-initiated fallbacks\n", res.Merges, res.SelfInitiated)
	fmt.Fprintf(w, "savings        %s\n", res.Reduction.String())
	fmt.Fprintf(w, "oracle         %s row sums\n", oracle)
	fmt.Fprintf(w, "cycles         %d\n", res.Cycles)
	if res.OracleErrors != 0 {
		return fmt.Errorf("reduction oracle mismatch: %d errors", res.OracleErrors)
	}
	return nil
}

// writeTelemetry harvests the run's telemetry (if enabled) and writes the
// requested export files.
func writeTelemetry(nw *noc.Network, tracePath, metricsPath string, w io.Writer) error {
	rep := nw.HarvestTelemetry()
	if rep == nil {
		return nil
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		werr := rep.WriteMetricsCSV(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("metrics: %w", werr)
		}
		fmt.Fprintf(w, "metrics        %s (%d epochs x %d sources, epoch %d cycles)\n",
			metricsPath, len(rep.EpochIndex), len(rep.Sources), rep.Epoch)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		werr := rep.WriteChromeTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("trace: %w", werr)
		}
		fmt.Fprintf(w, "trace          %s (%d events, %d dropped) — load in ui.perfetto.dev\n",
			tracePath, len(rep.Events), rep.DroppedEvents)
	}
	return nil
}

func replay(nw *noc.Network, path string, maxCycles int64, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := traffic.Read(f)
	if err != nil {
		return err
	}
	rp, err := traffic.NewReplayer(nw, events)
	if err != nil {
		return err
	}
	cycles, err := rp.Run(maxCycles)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "replayed       %d events\n", rp.EventsInjected)
	fmt.Fprintf(w, "cycles         %d\n", cycles)
	a := nw.Activity()
	fmt.Fprintf(w, "packets sent   %d\n", a.PacketsSent)
	fmt.Fprintf(w, "link flits     %d\n", a.LinkFlits)
	fmt.Fprintf(w, "gather uploads %d\n", a.GatherUploads)
	return nil
}
