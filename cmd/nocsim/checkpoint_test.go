package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// resultLines strips the process-local lines (scheduler evaluations,
// checkpoint/resume provenance) so an interrupted run can be compared
// against an uninterrupted one on results alone.
func resultLines(out string) string {
	var kept []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "evaluations") ||
			strings.HasPrefix(line, "checkpoint") ||
			strings.HasPrefix(line, "resumed") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestRunCheckpointResume is the CLI checkpoint contract: a run
// interrupted by a mid-flight checkpoint and resumed in a fresh process
// must print the same result lines as the uninterrupted run.
func TestRunCheckpointResume(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "ck.json")
	args := []string{
		"-rows", "4", "-cols", "4", "-pattern", "uniform",
		"-rate", "0.05", "-warmup", "100", "-measure", "500", "-seed", "7",
	}

	var full strings.Builder
	if err := run(args, &full); err != nil {
		t.Fatal(err)
	}

	var interrupted strings.Builder
	if err := run(append(args, "-checkpoint", ck, "-checkpointat", "300"), &interrupted); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(interrupted.String(), "checkpoint     "+ck) {
		t.Errorf("checkpoint line missing:\n%s", interrupted.String())
	}
	// The capturing run keeps going after the snapshot, so its results
	// must already match the plain run.
	if resultLines(interrupted.String()) != resultLines(full.String()) {
		t.Errorf("capturing run diverged:\n%s\nvs\n%s", interrupted.String(), full.String())
	}

	var resumed strings.Builder
	if err := run([]string{"-resume", ck}, &resumed); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resumed.String(), "resumed        "+ck+" at cycle 300") {
		t.Errorf("resume line missing:\n%s", resumed.String())
	}
	if resultLines(resumed.String()) != resultLines(full.String()) {
		t.Errorf("resumed run diverged:\n%s\nvs\n%s", resumed.String(), full.String())
	}
}

// TestRunResumeShardInvariant: resuming a sequential checkpoint on the
// sharded engine must not change the results — shard count is a
// result-invariant knob, so it comes from the resume flags, not the file.
func TestRunResumeShardInvariant(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "ck.json")
	args := []string{
		"-rows", "4", "-cols", "4", "-pattern", "transpose",
		"-rate", "0.05", "-warmup", "100", "-measure", "400", "-seed", "3",
		"-checkpoint", ck, "-checkpointat", "200",
	}
	var captured strings.Builder
	if err := run(args, &captured); err != nil {
		t.Fatal(err)
	}
	var seq, sharded strings.Builder
	if err := run([]string{"-resume", ck}, &seq); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-resume", ck, "-shards", "2"}, &sharded); err != nil {
		t.Fatal(err)
	}
	if resultLines(seq.String()) != resultLines(sharded.String()) {
		t.Errorf("shard count changed resumed results:\n%s\nvs\n%s", seq.String(), sharded.String())
	}
}

func TestRunCheckpointRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck.json")
	cases := [][]string{
		{"-checkpoint", ck},                                                                  // missing -checkpointat
		{"-checkpoint", ck, "-checkpointat", "0"},                                            // non-positive cycle
		{"-checkpoint", ck, "-checkpointat", "100", "-ina"},                                  // non-synthetic path
		{"-resume", ck, "-replay", "trace.json"},                                             // non-synthetic path
		{"-checkpoint", ck, "-checkpointat", "100", "-metrics", filepath.Join(dir, "m.csv")}, // telemetry
		{"-resume", filepath.Join(dir, "missing.json")},                                      // unreadable file
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("run(%v) accepted bad input", args)
		}
	}

	// A checkpoint file from a different snapshot version must be refused.
	if err := os.WriteFile(ck, []byte(`{"Network":{"Version":"bogus/v0"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"-resume", ck}, &b); err == nil {
		t.Error("foreign-version checkpoint accepted")
	}
}
